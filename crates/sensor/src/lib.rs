//! Model of the VL53L5CX multizone time-of-flight sensor used by the paper.
//!
//! The paper's custom "multizone ToF deck" carries up to two VL53L5CX sensors
//! (one forward- and one backward-facing). Each sensor returns a matrix of either
//! 8×8 zones at up to 15 Hz or 4×4 zones at up to 60 Hz; every zone reports a
//! distance and an error flag that is raised for out-of-range measurements or
//! interference. Each sensor draws about 320 mW.
//!
//! Because the physical sensor is unavailable in this reproduction, this crate
//! simulates it against an occupancy grid map (the same map geometry the particle
//! filter localizes in):
//!
//! * [`config`] — zone-matrix modes, field of view, range limits, rates, noise.
//! * [`zones`] — the angular direction of each zone within the field of view.
//! * [`raycast`] — DDA ray casting against an [`mcl_gridmap::OccupancyGrid`].
//! * [`measurement`] — zone measurements, frames and their conversion to the
//!   2D beams consumed by the observation model.
//! * [`batch`] — per-update flattening of a frame's valid beams into contiguous
//!   arrays ([`BeamBatch`]) for the data-parallel correction kernel.
//! * [`fusion`] — the sensor-agnostic [`ObservationBatch`]: ToF beams and/or
//!   UWB anchor ranges ([`AnchorRange`]) for the multi-sensor correction step.
//! * [`model`] — the sensor itself: cast one ray per zone, apply range noise,
//!   raise error flags.
//! * [`rig`] — one- and two-sensor mounting configurations on the drone body.
//!
//! # Example
//!
//! ```
//! use mcl_gridmap::{MapBuilder, Pose2};
//! use mcl_sensor::{SensorConfig, SensorRig};
//! use rand::SeedableRng;
//!
//! let map = MapBuilder::new(4.0, 4.0, 0.05).border_walls().build();
//! let rig = SensorRig::front_and_rear(SensorConfig::default());
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let frames = rig.capture(&map, &Pose2::new(2.0, 2.0, 0.0), &mut rng);
//! assert_eq!(frames.len(), 2);
//! let beams = SensorRig::frames_to_beams(&frames);
//! assert!(!beams.is_empty());
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod batch;
pub mod config;
pub mod fusion;
pub mod measurement;
pub mod model;
pub mod raycast;
pub mod rig;
pub mod zones;

pub use batch::BeamBatch;
pub use config::{SensorConfig, ZoneMode, SENSOR_POWER_MW};
pub use fusion::{AnchorRange, ObservationBatch};
pub use measurement::{Beam, TargetStatus, ToFFrame, ZoneMeasurement};
pub use model::ToFSensor;
pub use raycast::raycast_distance;
pub use rig::SensorRig;
pub use zones::ZoneGeometry;
