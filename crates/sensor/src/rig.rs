//! Sensor rigs: the mounting configurations evaluated in the paper.
//!
//! The multizone-ToF deck carries up to two VL53L5CX sensors. The paper's main
//! configuration uses both (forward and rear facing); the `fp32 1tof` ablation
//! uses only the forward one and shows markedly lower success rates and slower
//! convergence. [`SensorRig`] bundles the mounted sensors and produces, per
//! capture instant, the set of frames and the flattened beam list the particle
//! filter consumes.

use crate::config::{SensorConfig, SENSOR_POWER_MW};
use crate::measurement::{Beam, ToFFrame};
use crate::model::ToFSensor;
use mcl_gridmap::{OccupancyGrid, Pose2};
use rand::Rng;

/// A set of ToF sensors mounted on the drone.
#[derive(Debug, Clone, PartialEq)]
pub struct SensorRig {
    sensors: Vec<ToFSensor>,
}

impl SensorRig {
    /// A rig with a single forward-facing sensor (the paper's `1tof` ablation).
    pub fn front_only(config: SensorConfig) -> Self {
        SensorRig {
            sensors: vec![ToFSensor::forward(config)],
        }
    }

    /// A rig with forward- and rear-facing sensors (the paper's main setup).
    pub fn front_and_rear(config: SensorConfig) -> Self {
        SensorRig {
            sensors: vec![ToFSensor::forward(config), ToFSensor::rear(config)],
        }
    }

    /// A rig with custom sensors.
    ///
    /// # Panics
    ///
    /// Panics when `sensors` is empty: a rig without sensors cannot localize.
    pub fn custom(sensors: Vec<ToFSensor>) -> Self {
        assert!(
            !sensors.is_empty(),
            "a sensor rig needs at least one sensor"
        );
        SensorRig { sensors }
    }

    /// The mounted sensors.
    pub fn sensors(&self) -> &[ToFSensor] {
        &self.sensors
    }

    /// Number of mounted sensors.
    pub fn sensor_count(&self) -> usize {
        self.sensors.len()
    }

    /// Total electrical power drawn by the rig, in milliwatts (320 mW/sensor).
    pub fn power_mw(&self) -> f32 {
        self.sensors.len() as f32 * SENSOR_POWER_MW
    }

    /// The slowest effective frame rate across the rig, which bounds the MCL
    /// observation-update rate (15 Hz for the paper's 8×8 configuration).
    pub fn update_rate_hz(&self) -> f32 {
        self.sensors
            .iter()
            .map(|s| s.config().effective_rate_hz())
            .fold(f32::INFINITY, f32::min)
    }

    /// Captures one frame from every sensor at the given pose and time.
    pub fn capture<R: Rng + ?Sized>(
        &self,
        map: &OccupancyGrid,
        drone_pose: &Pose2,
        rng: &mut R,
    ) -> Vec<ToFFrame> {
        self.capture_at(map, drone_pose, 0.0, rng)
    }

    /// Captures one frame from every sensor, stamping them with `timestamp_s`.
    pub fn capture_at<R: Rng + ?Sized>(
        &self,
        map: &OccupancyGrid,
        drone_pose: &Pose2,
        timestamp_s: f64,
        rng: &mut R,
    ) -> Vec<ToFFrame> {
        self.sensors
            .iter()
            .map(|s| s.measure(map, drone_pose, timestamp_s, rng))
            .collect()
    }

    /// Flattens a set of frames into the beam list consumed by the particle
    /// filter. Frames must come from this rig (same mounting order); in practice
    /// callers pass the result of [`SensorRig::capture`] straight through.
    pub fn beams_from_frames(&self, frames: &[ToFFrame]) -> Vec<Beam> {
        frames
            .iter()
            .zip(self.sensors.iter())
            .flat_map(|(frame, sensor)| frame.to_beams(sensor.geometry()))
            .collect()
    }

    /// Convenience for callers that only have frames (all sensors in this
    /// workspace share one zone geometry per mode): rebuilds the geometry from
    /// each frame's mode and converts.
    pub fn frames_to_beams(frames: &[ToFFrame]) -> Vec<Beam> {
        frames
            .iter()
            .flat_map(|frame| {
                let config = SensorConfig {
                    mode: frame.mode,
                    ..SensorConfig::default()
                };
                let geometry = crate::zones::ZoneGeometry::new(&config);
                frame.to_beams(&geometry)
            })
            .collect()
    }

    /// Captures frames and immediately reduces them to beams.
    pub fn observe<R: Rng + ?Sized>(
        &self,
        map: &OccupancyGrid,
        drone_pose: &Pose2,
        timestamp_s: f64,
        rng: &mut R,
    ) -> Vec<Beam> {
        let frames = self.capture_at(map, drone_pose, timestamp_s, rng);
        self.beams_from_frames(&frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::f32::consts::PI;
    use mcl_gridmap::MapBuilder;
    use mcl_num::normalize_angle;
    use rand::SeedableRng;

    fn room() -> OccupancyGrid {
        MapBuilder::new(4.0, 4.0, 0.05).border_walls().build()
    }

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn clean_config() -> SensorConfig {
        SensorConfig::default()
            .with_range_noise(0.0)
            .with_interference_probability(0.0)
    }

    #[test]
    fn rig_sizes_and_power() {
        let one = SensorRig::front_only(SensorConfig::default());
        let two = SensorRig::front_and_rear(SensorConfig::default());
        assert_eq!(one.sensor_count(), 1);
        assert_eq!(two.sensor_count(), 2);
        assert_eq!(one.power_mw(), 320.0);
        assert_eq!(two.power_mw(), 640.0);
        assert_eq!(two.update_rate_hz(), 15.0);
    }

    #[test]
    #[should_panic(expected = "at least one sensor")]
    fn empty_rig_is_rejected() {
        let _ = SensorRig::custom(vec![]);
    }

    #[test]
    fn two_sensor_rig_produces_twice_the_frames_and_beams() {
        let rig = SensorRig::front_and_rear(clean_config());
        let frames = rig.capture(&room(), &Pose2::new(2.0, 2.0, 0.0), &mut rng(1));
        assert_eq!(frames.len(), 2);
        let beams = rig.beams_from_frames(&frames);
        // All 8 columns of both sensors are valid in an empty room well within
        // range → 16 beams.
        assert_eq!(beams.len(), 16);
        let single = SensorRig::front_only(clean_config());
        let beams_single = single.observe(&room(), &Pose2::new(2.0, 2.0, 0.0), 0.0, &mut rng(1));
        assert_eq!(beams_single.len(), 8);
    }

    #[test]
    fn front_and_rear_beams_point_in_opposite_directions() {
        let rig = SensorRig::front_and_rear(clean_config());
        let beams = rig.observe(&room(), &Pose2::new(2.0, 2.0, 0.0), 0.0, &mut rng(2));
        let forward: Vec<&Beam> = beams
            .iter()
            .filter(|b| normalize_angle(b.azimuth_body_rad).cos() > 0.5)
            .collect();
        let rear: Vec<&Beam> = beams
            .iter()
            .filter(|b| normalize_angle(b.azimuth_body_rad).cos() < -0.5)
            .collect();
        assert_eq!(forward.len(), 8);
        assert_eq!(rear.len(), 8);
    }

    #[test]
    fn beams_measure_the_correct_wall_distances() {
        // Drone at (1, 2) facing east (+X): the forward sensor sees the east wall
        // at ~2.95 m, the rear sensor the west wall at ~0.95 m.
        let rig = SensorRig::front_and_rear(clean_config());
        let beams = rig.observe(&room(), &Pose2::new(1.0, 2.0, 0.0), 0.0, &mut rng(3));
        let front_centre = beams
            .iter()
            .filter(|b| b.azimuth_body_rad.abs() < 0.1)
            .map(|b| b.range_m)
            .next();
        let rear_centre = beams
            .iter()
            .filter(|b| (normalize_angle(b.azimuth_body_rad) - PI).abs() < 0.1)
            .map(|b| b.range_m)
            .next();
        assert!((front_centre.unwrap() - 2.95).abs() < 0.15);
        assert!((rear_centre.unwrap() - 0.95).abs() < 0.15);
    }

    #[test]
    fn frames_to_beams_matches_rig_conversion() {
        let rig = SensorRig::front_and_rear(clean_config());
        let frames = rig.capture(&room(), &Pose2::new(2.0, 2.0, 0.7), &mut rng(4));
        let a = rig.beams_from_frames(&frames);
        let b = SensorRig::frames_to_beams(&frames);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x.azimuth_body_rad - y.azimuth_body_rad).abs() < 1e-6);
            assert!((x.range_m - y.range_m).abs() < 1e-6);
        }
    }

    #[test]
    fn capture_timestamps_are_propagated() {
        let rig = SensorRig::front_only(SensorConfig::default());
        let frames = rig.capture_at(&room(), &Pose2::new(2.0, 2.0, 0.0), 1.25, &mut rng(5));
        assert_eq!(frames[0].timestamp_s, 1.25);
    }
}
