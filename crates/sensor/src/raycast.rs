//! Ray casting against an occupancy grid map.
//!
//! The simulated sensor needs the true distance from the drone to the nearest
//! obstacle along a beam; the ablation benchmarks also use ray casting as an
//! alternative (more expensive) observation model. The implementation is the
//! standard DDA / Amanatides–Woo grid traversal: visit every cell the ray passes
//! through in order and stop at the first occupied one.

use mcl_gridmap::{CellIndex, CellState, OccupancyGrid, Point2};

/// Result of casting a single ray.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RaycastHit {
    /// The ray hit an occupied cell at the given distance (metres) and cell.
    Obstacle {
        /// Distance from the ray origin to the intersection point, in metres.
        distance_m: f32,
        /// The occupied cell that was hit.
        cell: CellIndex,
    },
    /// No obstacle within `max_range`; the ray either left the map or travelled
    /// the full range through free space.
    Miss,
}

impl RaycastHit {
    /// The hit distance, or `None` for a miss.
    pub fn distance(&self) -> Option<f32> {
        match self {
            RaycastHit::Obstacle { distance_m, .. } => Some(*distance_m),
            RaycastHit::Miss => None,
        }
    }
}

/// Casts a ray from `origin` along `angle_rad` (world frame) and returns the
/// first obstacle hit within `max_range_m`.
///
/// Rays that start outside the map immediately miss — the drone never flies
/// outside the mapped area, and a defensive miss is the safest interpretation.
pub fn raycast(
    map: &OccupancyGrid,
    origin: Point2,
    angle_rad: f32,
    max_range_m: f32,
) -> RaycastHit {
    let res = map.resolution();
    let dir_x = angle_rad.cos();
    let dir_y = angle_rad.sin();

    let Some(mut cell) = map.world_to_cell(origin.x, origin.y) else {
        return RaycastHit::Miss;
    };
    // Starting inside an obstacle counts as an immediate hit (distance 0); this
    // happens when a particle hypothesis lies inside a wall.
    if map.state(cell) == CellState::Occupied {
        return RaycastHit::Obstacle {
            distance_m: 0.0,
            cell,
        };
    }

    // Amanatides–Woo setup: distance along the ray to the next vertical /
    // horizontal cell boundary, and the distance increment per cell step.
    let step_col: i64 = if dir_x > 0.0 { 1 } else { -1 };
    let step_row: i64 = if dir_y > 0.0 { 1 } else { -1 };

    let next_col_boundary = if dir_x > 0.0 {
        (cell.col as f32 + 1.0) * res
    } else {
        cell.col as f32 * res
    };
    let next_row_boundary = if dir_y > 0.0 {
        (cell.row as f32 + 1.0) * res
    } else {
        cell.row as f32 * res
    };

    let mut t_max_x = if dir_x.abs() < 1e-12 {
        f32::INFINITY
    } else {
        (next_col_boundary - origin.x) / dir_x
    };
    let mut t_max_y = if dir_y.abs() < 1e-12 {
        f32::INFINITY
    } else {
        (next_row_boundary - origin.y) / dir_y
    };
    let t_delta_x = if dir_x.abs() < 1e-12 {
        f32::INFINITY
    } else {
        res / dir_x.abs()
    };
    let t_delta_y = if dir_y.abs() < 1e-12 {
        f32::INFINITY
    } else {
        res / dir_y.abs()
    };

    loop {
        // Advance to the next cell along the ray.
        let t;
        if t_max_x < t_max_y {
            t = t_max_x;
            t_max_x += t_delta_x;
            let col = cell.col as i64 + step_col;
            if col < 0 {
                return RaycastHit::Miss;
            }
            cell = CellIndex::new(col as usize, cell.row);
        } else {
            t = t_max_y;
            t_max_y += t_delta_y;
            let row = cell.row as i64 + step_row;
            if row < 0 {
                return RaycastHit::Miss;
            }
            cell = CellIndex::new(cell.col, row as usize);
        }
        if t > max_range_m {
            return RaycastHit::Miss;
        }
        if !map.contains(cell) {
            return RaycastHit::Miss;
        }
        if map.state(cell) == CellState::Occupied {
            return RaycastHit::Obstacle {
                distance_m: t,
                cell,
            };
        }
    }
}

/// Convenience wrapper returning the distance to the first obstacle, or
/// `max_range_m` when nothing is hit (the saturation behaviour of a real ToF
/// sensor pointed into open space).
pub fn raycast_distance(
    map: &OccupancyGrid,
    origin: Point2,
    angle_rad: f32,
    max_range_m: f32,
) -> f32 {
    raycast(map, origin, angle_rad, max_range_m)
        .distance()
        .unwrap_or(max_range_m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::f32::consts::{FRAC_PI_2, FRAC_PI_4, PI};
    use mcl_gridmap::MapBuilder;

    fn square_room() -> OccupancyGrid {
        // 4 m × 4 m room with border walls at 5 cm resolution.
        MapBuilder::new(4.0, 4.0, 0.05).border_walls().build()
    }

    #[test]
    fn axis_aligned_distances_match_geometry() {
        let map = square_room();
        let origin = Point2::new(2.0, 2.0);
        // The wall cells span [0, 0.05) and [3.95, 4.0); the reported distance is
        // to the first occupied cell boundary.
        let east = raycast_distance(&map, origin, 0.0, 10.0);
        assert!((east - 1.95).abs() < 0.06, "east {east}");
        let north = raycast_distance(&map, origin, FRAC_PI_2, 10.0);
        assert!((north - 1.95).abs() < 0.06, "north {north}");
        let west = raycast_distance(&map, origin, PI, 10.0);
        assert!((west - 1.95).abs() < 0.06, "west {west}");
        let south = raycast_distance(&map, origin, -FRAC_PI_2, 10.0);
        assert!((south - 1.95).abs() < 0.06, "south {south}");
    }

    #[test]
    fn diagonal_distance_is_sqrt_two_longer() {
        let map = square_room();
        let origin = Point2::new(2.0, 2.0);
        let diag = raycast_distance(&map, origin, FRAC_PI_4, 10.0);
        let axis = raycast_distance(&map, origin, 0.0, 10.0);
        assert!(
            (diag - axis * core::f32::consts::SQRT_2).abs() < 0.1,
            "diag {diag} axis {axis}"
        );
    }

    #[test]
    fn range_limit_truncates_to_miss() {
        let map = square_room();
        let origin = Point2::new(2.0, 2.0);
        assert_eq!(raycast(&map, origin, 0.0, 1.0), RaycastHit::Miss);
        assert_eq!(raycast_distance(&map, origin, 0.0, 1.0), 1.0);
        // Just long enough to reach the wall.
        assert!(raycast(&map, origin, 0.0, 2.0).distance().is_some());
    }

    #[test]
    fn interior_obstacle_is_hit_before_the_far_wall() {
        let map = MapBuilder::new(4.0, 4.0, 0.05)
            .border_walls()
            .filled_rect((2.9, 1.5), (3.1, 2.5))
            .build();
        let d = raycast_distance(&map, Point2::new(2.0, 2.0), 0.0, 10.0);
        assert!((d - 0.9).abs() < 0.06, "hit the pillar, got {d}");
    }

    #[test]
    fn ray_from_inside_a_wall_reports_zero() {
        let map = square_room();
        let hit = raycast(&map, Point2::new(0.02, 2.0), 0.0, 10.0);
        assert_eq!(hit.distance(), Some(0.0));
    }

    #[test]
    fn ray_starting_outside_the_map_misses() {
        let map = square_room();
        assert_eq!(
            raycast(&map, Point2::new(-1.0, 2.0), 0.0, 10.0),
            RaycastHit::Miss
        );
        assert_eq!(
            raycast(&map, Point2::new(2.0, 5.0), 0.0, 10.0),
            RaycastHit::Miss
        );
    }

    #[test]
    fn ray_leaving_an_open_map_misses() {
        // No walls at all: every ray runs out of map or range.
        let map = OccupancyGrid::new(2.0, 2.0, 0.05).unwrap();
        assert_eq!(
            raycast(&map, Point2::new(1.0, 1.0), 0.3, 10.0),
            RaycastHit::Miss
        );
        assert_eq!(
            raycast_distance(&map, Point2::new(1.0, 1.0), 0.3, 10.0),
            10.0
        );
    }

    #[test]
    fn all_directions_hit_the_border_of_a_closed_room() {
        let map = square_room();
        let origin = Point2::new(1.3, 2.7);
        for i in 0..72 {
            let angle = i as f32 * PI / 36.0;
            let hit = raycast(&map, origin, angle, 10.0);
            assert!(
                hit.distance().is_some(),
                "direction {angle} escaped a closed room"
            );
        }
    }

    #[test]
    fn hit_cell_is_actually_occupied() {
        let map = MapBuilder::new(2.0, 2.0, 0.05)
            .border_walls()
            .wall((1.0, 0.5), (1.0, 1.5))
            .build();
        for i in 0..36 {
            let angle = i as f32 * PI / 18.0;
            if let RaycastHit::Obstacle { cell, .. } =
                raycast(&map, Point2::new(0.5, 1.0), angle, 5.0)
            {
                assert_eq!(map.state(cell), CellState::Occupied);
            }
        }
    }

    #[test]
    fn distance_agrees_with_euclidean_geometry_for_oblique_ray() {
        // Wall along x = 1.0..1.05; ray at 30° from (0.2, 1.0) should travel
        // (1.0 - 0.2) / cos(30°) ≈ 0.924 m before hitting it.
        let map = MapBuilder::new(2.0, 2.0, 0.05)
            .wall((1.0, 0.0), (1.0, 2.0))
            .build();
        let d = raycast_distance(&map, Point2::new(0.2, 1.0), 30f32.to_radians(), 5.0);
        assert!((d - 0.8 / 30f32.to_radians().cos()).abs() < 0.07, "got {d}");
    }
}
