//! Angular geometry of the sensor's zone matrix.
//!
//! The VL53L5CX divides its square field of view into an N×N matrix of zones.
//! Zone `(col, row)` observes a small solid angle whose centre direction is offset
//! from the sensor's optical axis. For planar localization only the horizontal
//! (azimuth) component determines where a beam lands in the 2D map; the vertical
//! (elevation) component matters because an inclined beam measures a slightly
//! longer distance to a vertical wall (range / cos(elevation)). The simulator
//! applies that secant correction; the localization algorithm — like the paper —
//! treats every zone's range as a planar range along its azimuth.

use crate::config::{SensorConfig, ZoneMode};
use serde::{Deserialize, Serialize};

/// Direction of one zone relative to the sensor optical axis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZoneDirection {
    /// Zone column index (0 = leftmost when looking out of the sensor).
    pub col: usize,
    /// Zone row index (0 = bottom).
    pub row: usize,
    /// Horizontal angle from the optical axis in radians (positive = left/CCW).
    pub azimuth_rad: f32,
    /// Vertical angle from the optical axis in radians (positive = up).
    pub elevation_rad: f32,
}

/// The full zone-direction table for a sensor configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZoneGeometry {
    mode: ZoneMode,
    directions: Vec<ZoneDirection>,
}

impl ZoneGeometry {
    /// Computes the zone directions for a sensor configuration.
    ///
    /// Zones are laid out on a regular grid across the field of view; the centre
    /// direction of zone `i` along one axis with `n` zones and full field of view
    /// `fov` is `fov * ((i + 0.5) / n - 0.5)`.
    pub fn new(config: &SensorConfig) -> Self {
        let cols = config.mode.columns();
        let rows = config.mode.rows();
        let mut directions = Vec::with_capacity(cols * rows);
        for row in 0..rows {
            for col in 0..cols {
                let azimuth_rad =
                    config.fov_horizontal_rad * ((col as f32 + 0.5) / cols as f32 - 0.5);
                let elevation_rad =
                    config.fov_vertical_rad * ((row as f32 + 0.5) / rows as f32 - 0.5);
                directions.push(ZoneDirection {
                    col,
                    row,
                    azimuth_rad,
                    elevation_rad,
                });
            }
        }
        ZoneGeometry {
            mode: config.mode,
            directions,
        }
    }

    /// The zone mode this geometry was computed for.
    pub fn mode(&self) -> ZoneMode {
        self.mode
    }

    /// All zone directions in row-major order (row 0 first).
    pub fn directions(&self) -> &[ZoneDirection] {
        &self.directions
    }

    /// The direction of zone `(col, row)`.
    pub fn direction(&self, col: usize, row: usize) -> Option<&ZoneDirection> {
        if col >= self.mode.columns() || row >= self.mode.rows() {
            return None;
        }
        self.directions.get(row * self.mode.columns() + col)
    }

    /// The distinct azimuth angles of the zone columns (one per column), in
    /// radians, ordered by column index.
    ///
    /// The 2D observation model collapses the zone matrix onto these azimuths:
    /// every zone in a column shares the same planar beam direction.
    pub fn column_azimuths(&self) -> Vec<f32> {
        (0..self.mode.columns())
            .map(|col| self.directions[col].azimuth_rad)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zone_count_matches_mode() {
        let g8 = ZoneGeometry::new(&SensorConfig::default());
        assert_eq!(g8.directions().len(), 64);
        let g4 = ZoneGeometry::new(&SensorConfig::default().with_mode(ZoneMode::Grid4x4));
        assert_eq!(g4.directions().len(), 16);
    }

    #[test]
    fn directions_are_symmetric_about_the_optical_axis() {
        let g = ZoneGeometry::new(&SensorConfig::default());
        let cols = 8;
        for row in 0..8 {
            for col in 0..cols {
                let a = g.direction(col, row).unwrap();
                let b = g.direction(cols - 1 - col, row).unwrap();
                assert!(
                    (a.azimuth_rad + b.azimuth_rad).abs() < 1e-6,
                    "columns {col} and {} must mirror",
                    cols - 1 - col
                );
            }
        }
        // Mean azimuth over a row is zero.
        let mean: f32 = g.directions()[..8]
            .iter()
            .map(|d| d.azimuth_rad)
            .sum::<f32>()
            / 8.0;
        assert!(mean.abs() < 1e-6);
    }

    #[test]
    fn directions_stay_inside_the_field_of_view() {
        let cfg = SensorConfig::default();
        let g = ZoneGeometry::new(&cfg);
        for d in g.directions() {
            assert!(d.azimuth_rad.abs() < cfg.fov_horizontal_rad / 2.0);
            assert!(d.elevation_rad.abs() < cfg.fov_vertical_rad / 2.0);
        }
    }

    #[test]
    fn adjacent_columns_are_evenly_spaced() {
        let cfg = SensorConfig::default();
        let g = ZoneGeometry::new(&cfg);
        let az = g.column_azimuths();
        assert_eq!(az.len(), 8);
        let expected_step = cfg.fov_horizontal_rad / 8.0;
        for pair in az.windows(2) {
            assert!((pair[1] - pair[0] - expected_step).abs() < 1e-6);
        }
    }

    #[test]
    fn out_of_range_zone_lookup_is_none() {
        let g = ZoneGeometry::new(&SensorConfig::default());
        assert!(g.direction(8, 0).is_none());
        assert!(g.direction(0, 8).is_none());
        assert!(g.direction(7, 7).is_some());
    }
}
