//! Static configuration of the VL53L5CX sensor model.

use serde::{Deserialize, Serialize};

/// Electrical power drawn by one VL53L5CX while ranging, in milliwatts.
///
/// The paper budgets 320 mW per sensor when summing the total sensing and
/// processing power (§IV-E).
pub const SENSOR_POWER_MW: f32 = 320.0;

/// Zone-matrix resolution of the sensor.
///
/// The VL53L5CX can range either an 8×8 matrix at up to 15 Hz or a 4×4 matrix at
/// up to 60 Hz.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ZoneMode {
    /// 8×8 zones, maximum 15 Hz frame rate (the configuration used in the paper's
    /// experiments — its MCL update rate is limited by this 15 Hz).
    #[default]
    Grid8x8,
    /// 4×4 zones, maximum 60 Hz frame rate.
    Grid4x4,
}

impl ZoneMode {
    /// Number of zone columns (horizontal direction).
    pub fn columns(self) -> usize {
        match self {
            ZoneMode::Grid8x8 => 8,
            ZoneMode::Grid4x4 => 4,
        }
    }

    /// Number of zone rows (vertical direction).
    pub fn rows(self) -> usize {
        match self {
            ZoneMode::Grid8x8 => 8,
            ZoneMode::Grid4x4 => 4,
        }
    }

    /// Total number of zones in a frame.
    pub fn zone_count(self) -> usize {
        self.columns() * self.rows()
    }

    /// Maximum frame rate in hertz for this mode.
    pub fn max_rate_hz(self) -> f32 {
        match self {
            ZoneMode::Grid8x8 => 15.0,
            ZoneMode::Grid4x4 => 60.0,
        }
    }

    /// Frame period in seconds at the maximum rate.
    pub fn frame_period_s(self) -> f32 {
        1.0 / self.max_rate_hz()
    }
}

/// Configuration of one simulated VL53L5CX.
///
/// The defaults reproduce the sensor as used in the paper: 8×8 zones at 15 Hz, a
/// 45° square field of view, ~4 m maximum range and centimetre-level range noise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorConfig {
    /// Zone matrix mode.
    pub mode: ZoneMode,
    /// Full horizontal field of view in radians (45° for the VL53L5CX).
    pub fov_horizontal_rad: f32,
    /// Full vertical field of view in radians (45° for the VL53L5CX).
    pub fov_vertical_rad: f32,
    /// Maximum measurable range in metres (~4 m for the VL53L5CX indoors).
    pub max_range_m: f32,
    /// Minimum measurable range in metres.
    pub min_range_m: f32,
    /// Standard deviation of the additive Gaussian range noise, in metres.
    pub range_noise_std_m: f32,
    /// Probability that a zone measurement is dropped due to interference or low
    /// signal, raising the error flag.
    pub interference_probability: f64,
    /// Frame rate in hertz; clamped to the mode's maximum when the sensor runs.
    pub frame_rate_hz: f32,
}

impl Default for SensorConfig {
    fn default() -> Self {
        SensorConfig {
            mode: ZoneMode::Grid8x8,
            fov_horizontal_rad: 45f32.to_radians(),
            fov_vertical_rad: 45f32.to_radians(),
            max_range_m: 4.0,
            min_range_m: 0.02,
            range_noise_std_m: 0.02,
            interference_probability: 0.02,
            frame_rate_hz: 15.0,
        }
    }
}

impl SensorConfig {
    /// The effective frame rate: the requested rate clamped to the mode maximum.
    pub fn effective_rate_hz(&self) -> f32 {
        self.frame_rate_hz.min(self.mode.max_rate_hz())
    }

    /// The effective frame period in seconds.
    pub fn effective_period_s(&self) -> f32 {
        1.0 / self.effective_rate_hz()
    }

    /// Returns a copy configured for the 4×4 / 60 Hz mode.
    pub fn with_mode(mut self, mode: ZoneMode) -> Self {
        self.mode = mode;
        self
    }

    /// Returns a copy with a different range-noise standard deviation.
    pub fn with_range_noise(mut self, std_m: f32) -> Self {
        self.range_noise_std_m = std_m;
        self
    }

    /// Returns a copy with a different interference probability.
    pub fn with_interference_probability(mut self, p: f64) -> Self {
        self.interference_probability = p;
        self
    }

    /// Validates the configuration, returning a description of the first problem.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.fov_horizontal_rad > 0.0 && self.fov_horizontal_rad < core::f32::consts::PI) {
            return Err("horizontal field of view must be in (0, π)".to_owned());
        }
        if !(self.fov_vertical_rad > 0.0 && self.fov_vertical_rad < core::f32::consts::PI) {
            return Err("vertical field of view must be in (0, π)".to_owned());
        }
        if !(self.max_range_m > self.min_range_m && self.max_range_m.is_finite()) {
            return Err("max range must exceed min range".to_owned());
        }
        if self.min_range_m < 0.0 {
            return Err("min range must be non-negative".to_owned());
        }
        if self.range_noise_std_m < 0.0 || !self.range_noise_std_m.is_finite() {
            return Err("range noise must be non-negative and finite".to_owned());
        }
        if !(0.0..=1.0).contains(&self.interference_probability) {
            return Err("interference probability must be in [0, 1]".to_owned());
        }
        // NaN must fail validation too, hence the explicit is_nan check.
        if self.frame_rate_hz <= 0.0 || self.frame_rate_hz.is_nan() {
            return Err("frame rate must be positive".to_owned());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zone_modes_have_paper_parameters() {
        assert_eq!(ZoneMode::Grid8x8.zone_count(), 64);
        assert_eq!(ZoneMode::Grid4x4.zone_count(), 16);
        assert_eq!(ZoneMode::Grid8x8.max_rate_hz(), 15.0);
        assert_eq!(ZoneMode::Grid4x4.max_rate_hz(), 60.0);
        assert!((ZoneMode::Grid8x8.frame_period_s() - 1.0 / 15.0).abs() < 1e-6);
    }

    #[test]
    fn default_config_is_valid_and_matches_the_paper() {
        let cfg = SensorConfig::default();
        cfg.validate().unwrap();
        assert_eq!(cfg.mode, ZoneMode::Grid8x8);
        assert_eq!(cfg.effective_rate_hz(), 15.0);
        assert!((cfg.fov_horizontal_rad.to_degrees() - 45.0).abs() < 1e-4);
        assert_eq!(SENSOR_POWER_MW, 320.0);
    }

    #[test]
    fn effective_rate_is_clamped_by_mode() {
        let cfg = SensorConfig {
            frame_rate_hz: 100.0,
            ..SensorConfig::default()
        };
        assert_eq!(cfg.effective_rate_hz(), 15.0);
        let cfg = cfg.with_mode(ZoneMode::Grid4x4);
        assert_eq!(cfg.effective_rate_hz(), 60.0);
        let mut slow = cfg;
        slow.frame_rate_hz = 5.0;
        assert_eq!(slow.effective_rate_hz(), 5.0);
    }

    #[test]
    fn validation_catches_each_invalid_field() {
        let base = SensorConfig::default();
        let mut c = base;
        c.fov_horizontal_rad = 0.0;
        assert!(c.validate().is_err());
        let mut c = base;
        c.fov_vertical_rad = 4.0;
        assert!(c.validate().is_err());
        let mut c = base;
        c.max_range_m = 0.0;
        assert!(c.validate().is_err());
        let mut c = base;
        c.min_range_m = -0.1;
        assert!(c.validate().is_err());
        let mut c = base;
        c.range_noise_std_m = f32::NAN;
        assert!(c.validate().is_err());
        let mut c = base;
        c.interference_probability = 1.5;
        assert!(c.validate().is_err());
        let mut c = base;
        c.frame_rate_hz = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn builder_style_setters() {
        let cfg = SensorConfig::default()
            .with_range_noise(0.05)
            .with_interference_probability(0.1)
            .with_mode(ZoneMode::Grid4x4);
        assert_eq!(cfg.range_noise_std_m, 0.05);
        assert_eq!(cfg.interference_probability, 0.1);
        assert_eq!(cfg.mode, ZoneMode::Grid4x4);
    }
}
