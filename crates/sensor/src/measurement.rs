//! Measurement types: zone readings, frames and planar beams.
//!
//! A [`ToFFrame`] is what one VL53L5CX delivers over I²C: one [`ZoneMeasurement`]
//! per zone, each with a distance and a status flag. The localization algorithm
//! does not consume frames directly; it consumes [`Beam`]s — planar (azimuth,
//! range) pairs in the drone body frame, with invalid zones already dropped.
//! [`ToFFrame::to_beams`] performs that reduction exactly like the paper's
//! firmware: zones flagged invalid are skipped, and the zones of each column are
//! collapsed onto the column's azimuth by taking their median range.

use crate::config::ZoneMode;
use crate::zones::ZoneGeometry;
use mcl_gridmap::Pose2;
use serde::{Deserialize, Serialize};

/// Validity flag attached to every zone measurement.
///
/// The VL53L5CX reports a per-zone target status; the paper's firmware reduces it
/// to "error flag raised or not", raised for out-of-range measurements and
/// detected interference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TargetStatus {
    /// The distance is a valid range measurement.
    Valid,
    /// No target within the sensor's measurable range.
    OutOfRange,
    /// The measurement was corrupted by interference / low signal.
    Interference,
}

impl TargetStatus {
    /// Returns `true` when the measurement can be used by the localization.
    pub fn is_valid(self) -> bool {
        self == TargetStatus::Valid
    }
}

/// One zone's measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZoneMeasurement {
    /// Zone column index.
    pub col: usize,
    /// Zone row index.
    pub row: usize,
    /// Measured distance in metres (meaningless when the status is not valid).
    pub distance_m: f32,
    /// Validity flag.
    pub status: TargetStatus,
}

/// A full frame from one sensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ToFFrame {
    /// Time the frame was captured, in seconds since sequence start.
    pub timestamp_s: f64,
    /// Zone mode the frame was captured in.
    pub mode: ZoneMode,
    /// Pose of the sensor in the drone body frame (identity = forward facing).
    pub mounting: Pose2,
    /// The zone measurements, row-major (row 0 first).
    pub zones: Vec<ZoneMeasurement>,
}

impl ToFFrame {
    /// Number of zones whose error flag is not raised.
    pub fn valid_zone_count(&self) -> usize {
        self.zones.iter().filter(|z| z.status.is_valid()).count()
    }

    /// Flags every zone of the frame with `status`, simulating a whole-sensor
    /// dropout (occlusion, multi-sensor interference, I²C stall). The distances
    /// are kept — a real frame's payload is garbage, not zeroed — but
    /// [`ToFFrame::to_beams`] will produce no beams from the frame, exactly as
    /// the firmware discards fully flagged frames.
    ///
    /// Used by the scenario suite's per-sensor dropout windows.
    pub fn invalidate_all(&mut self, status: TargetStatus) {
        for zone in &mut self.zones {
            zone.status = status;
        }
    }

    /// Reduces the frame to planar beams in the *drone body frame*.
    ///
    /// For every zone column, the valid zone distances are collected and their
    /// median becomes the beam range; columns with no valid zone produce no beam.
    /// The beam azimuth is the column azimuth rotated by the sensor's mounting
    /// yaw (π for the rear-facing sensor).
    pub fn to_beams(&self, geometry: &ZoneGeometry) -> Vec<Beam> {
        let cols = self.mode.columns();
        let azimuths = geometry.column_azimuths();
        let mut beams = Vec::with_capacity(cols);
        for (col, azimuth) in azimuths.iter().enumerate().take(cols) {
            let mut ranges: Vec<f32> = self
                .zones
                .iter()
                .filter(|z| z.col == col && z.status.is_valid())
                .map(|z| z.distance_m)
                .collect();
            if ranges.is_empty() {
                continue;
            }
            ranges.sort_by(|a, b| a.partial_cmp(b).unwrap_or(core::cmp::Ordering::Equal));
            let median = if ranges.len() % 2 == 1 {
                ranges[ranges.len() / 2]
            } else {
                0.5 * (ranges[ranges.len() / 2 - 1] + ranges[ranges.len() / 2])
            };
            beams.push(Beam {
                azimuth_body_rad: self.mounting.theta + azimuth,
                range_m: median,
                origin_body: self.mounting,
            });
        }
        beams
    }
}

/// A planar range measurement in the drone body frame — the unit the observation
/// model consumes (`z_t^k` in the paper's Eq. 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Beam {
    /// Beam direction in the body frame, radians (0 = straight ahead).
    pub azimuth_body_rad: f32,
    /// Measured range along the beam, metres.
    pub range_m: f32,
    /// Pose of the emitting sensor in the body frame (its translation offsets the
    /// beam origin; a Crazyflie is small so this is nearly zero, but keeping it
    /// makes the rig model exact).
    pub origin_body: Pose2,
}

impl Beam {
    /// The world-frame end point of this beam for a drone at `pose`.
    pub fn end_point(&self, pose: &Pose2) -> mcl_gridmap::Point2 {
        let sensor_world = pose.compose(&self.origin_body);
        let angle = pose.theta + self.azimuth_body_rad;
        mcl_gridmap::Point2::new(
            sensor_world.x + angle.cos() * self.range_m,
            sensor_world.y + angle.sin() * self.range_m,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SensorConfig;
    use core::f32::consts::PI;

    fn frame_with(distances: &[(usize, usize, f32, TargetStatus)], mounting: Pose2) -> ToFFrame {
        ToFFrame {
            timestamp_s: 0.0,
            mode: ZoneMode::Grid4x4,
            mounting,
            zones: distances
                .iter()
                .map(|&(col, row, d, status)| ZoneMeasurement {
                    col,
                    row,
                    distance_m: d,
                    status,
                })
                .collect(),
        }
    }

    #[test]
    fn valid_zone_count_ignores_flagged_zones() {
        let f = frame_with(
            &[
                (0, 0, 1.0, TargetStatus::Valid),
                (1, 0, 2.0, TargetStatus::OutOfRange),
                (2, 0, 3.0, TargetStatus::Interference),
                (3, 0, 0.5, TargetStatus::Valid),
            ],
            Pose2::default(),
        );
        assert_eq!(f.valid_zone_count(), 2);
        assert!(TargetStatus::Valid.is_valid());
        assert!(!TargetStatus::OutOfRange.is_valid());
    }

    #[test]
    fn beams_take_the_median_of_each_column() {
        let cfg = SensorConfig::default().with_mode(ZoneMode::Grid4x4);
        let geometry = ZoneGeometry::new(&cfg);
        let f = frame_with(
            &[
                (0, 0, 1.0, TargetStatus::Valid),
                (0, 1, 1.2, TargetStatus::Valid),
                (0, 2, 5.0, TargetStatus::Valid),
                (1, 0, 2.0, TargetStatus::OutOfRange),
            ],
            Pose2::default(),
        );
        let beams = f.to_beams(&geometry);
        // Column 0 has three valid zones → median 1.2; column 1 has none valid.
        assert_eq!(beams.len(), 1);
        assert!((beams[0].range_m - 1.2).abs() < 1e-6);
        assert!((beams[0].azimuth_body_rad - geometry.column_azimuths()[0]).abs() < 1e-6);
    }

    #[test]
    fn even_number_of_valid_zones_averages_the_middle_pair() {
        let cfg = SensorConfig::default().with_mode(ZoneMode::Grid4x4);
        let geometry = ZoneGeometry::new(&cfg);
        let f = frame_with(
            &[
                (2, 0, 1.0, TargetStatus::Valid),
                (2, 1, 2.0, TargetStatus::Valid),
                (2, 2, 3.0, TargetStatus::Valid),
                (2, 3, 4.0, TargetStatus::Valid),
            ],
            Pose2::default(),
        );
        let beams = f.to_beams(&geometry);
        assert_eq!(beams.len(), 1);
        assert!((beams[0].range_m - 2.5).abs() < 1e-6);
    }

    #[test]
    fn rear_mounting_rotates_beam_azimuths_by_pi() {
        let cfg = SensorConfig::default().with_mode(ZoneMode::Grid4x4);
        let geometry = ZoneGeometry::new(&cfg);
        let rear = Pose2::new(0.0, 0.0, PI);
        let f = frame_with(&[(1, 1, 1.5, TargetStatus::Valid)], rear);
        let beams = f.to_beams(&geometry);
        assert_eq!(beams.len(), 1);
        let expected = PI + geometry.column_azimuths()[1];
        assert!((beams[0].azimuth_body_rad - expected).abs() < 1e-6);
    }

    #[test]
    fn invalidate_all_silences_the_frame_but_keeps_payload() {
        let cfg = SensorConfig::default().with_mode(ZoneMode::Grid4x4);
        let geometry = ZoneGeometry::new(&cfg);
        let mut f = frame_with(
            &[
                (0, 0, 1.0, TargetStatus::Valid),
                (1, 0, 2.0, TargetStatus::Valid),
            ],
            Pose2::default(),
        );
        assert_eq!(f.to_beams(&geometry).len(), 2);
        f.invalidate_all(TargetStatus::Interference);
        assert_eq!(f.valid_zone_count(), 0);
        assert!(f.to_beams(&geometry).is_empty());
        assert_eq!(f.zones[1].distance_m, 2.0);
    }

    #[test]
    fn frame_with_all_invalid_zones_produces_no_beams() {
        let cfg = SensorConfig::default().with_mode(ZoneMode::Grid4x4);
        let geometry = ZoneGeometry::new(&cfg);
        let f = frame_with(
            &[
                (0, 0, 1.0, TargetStatus::OutOfRange),
                (1, 0, 1.0, TargetStatus::Interference),
            ],
            Pose2::default(),
        );
        assert!(f.to_beams(&geometry).is_empty());
    }

    #[test]
    fn beam_end_point_lands_where_expected() {
        let beam = Beam {
            azimuth_body_rad: 0.0,
            range_m: 2.0,
            origin_body: Pose2::default(),
        };
        // Drone at (1, 1) facing +Y: the end point is (1, 3).
        let p = beam.end_point(&Pose2::new(1.0, 1.0, core::f32::consts::FRAC_PI_2));
        assert!((p.x - 1.0).abs() < 1e-5);
        assert!((p.y - 3.0).abs() < 1e-5);
    }
}
