//! Sensor-agnostic observation batches: ToF beams fused with UWB anchor
//! ranges.
//!
//! The filter's correction step historically consumed a [`BeamBatch`] only.
//! [`ObservationBatch`] is the multi-sensor front end: it carries the ToF
//! beams **and/or** a set of UWB anchor-range measurements, each stored in
//! structure-of-arrays form so the per-sensor log-likelihood kernels iterate
//! contiguous component arrays exactly like the beam kernel does. A batch may
//! hold beams only (bit-identical to the legacy beam-only update), anchors
//! only (UWB-denied-of-ToF operation, e.g. dust-blinded sensors), or both
//! (fusion — the per-sensor log-likelihoods sum into the particle weights).
//!
//! Anchor measurements are *absolute*: each one pins the world position of a
//! fixed anchor plus the range a UWB transceiver measured to it. Unlike beams
//! there is no body-frame precomputation to hoist (the residual
//! `| p − a | − z` depends only on the particle position), so the arrays are
//! stored as-is.

use crate::batch::BeamBatch;
use crate::measurement::Beam;
use serde::{Deserialize, Serialize};

/// One UWB anchor-range measurement: the anchor's fixed world position and
/// the range measured to it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnchorRange {
    /// World-frame X position of the anchor, metres.
    pub anchor_x_m: f32,
    /// World-frame Y position of the anchor, metres.
    pub anchor_y_m: f32,
    /// Measured range from the drone to the anchor, metres. Non-finite
    /// values mark a failed/denied measurement and are skipped by every
    /// consumer (the PR 3 NaN rule the beam path applies).
    pub range_m: f32,
}

impl AnchorRange {
    /// Convenience constructor.
    pub fn new(anchor_x_m: f32, anchor_y_m: f32, range_m: f32) -> Self {
        AnchorRange {
            anchor_x_m,
            anchor_y_m,
            range_m,
        }
    }

    /// Whether the measurement is usable (finite range).
    pub fn is_usable(&self) -> bool {
        self.range_m.is_finite()
    }
}

/// A sensor-agnostic observation set for one filter update: the ToF
/// [`BeamBatch`] plus zero or more UWB [`AnchorRange`] measurements in
/// structure-of-arrays form.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ObservationBatch {
    beams: BeamBatch,
    anchor_x_m: Vec<f32>,
    anchor_y_m: Vec<f32>,
    anchor_range_m: Vec<f32>,
}

impl ObservationBatch {
    /// An empty batch (no beams, no anchors).
    pub fn new() -> Self {
        ObservationBatch::default()
    }

    /// Wraps an already-flattened beam batch with no anchor measurements —
    /// the beam-only case, scored bit-identically to the legacy
    /// `BeamBatch`-only entry points.
    pub fn from_beam_batch(beams: BeamBatch) -> Self {
        ObservationBatch {
            beams,
            ..ObservationBatch::default()
        }
    }

    /// Flattens a beam list (no anchors). See [`BeamBatch::from_beams`].
    pub fn from_beams(beams: &[Beam]) -> Self {
        Self::from_beam_batch(BeamBatch::from_beams(beams))
    }

    /// Appends one anchor-range measurement. Non-finite ranges may be pushed
    /// (a transport may deliver them); every scorer skips them.
    pub fn push_anchor(&mut self, anchor: AnchorRange) {
        self.anchor_x_m.push(anchor.anchor_x_m);
        self.anchor_y_m.push(anchor.anchor_y_m);
        self.anchor_range_m.push(anchor.range_m);
    }

    /// Returns the batch with `anchors` appended (builder form).
    pub fn with_anchors(mut self, anchors: &[AnchorRange]) -> Self {
        for anchor in anchors {
            self.push_anchor(*anchor);
        }
        self
    }

    /// The ToF beam half of the observation.
    pub fn beams(&self) -> &BeamBatch {
        &self.beams
    }

    /// Mutable access to the beam half, e.g. to
    /// [partition](BeamBatch::partition_in_range) it for the filter's
    /// `r_max` once per update.
    pub fn beams_mut(&mut self) -> &mut BeamBatch {
        &mut self.beams
    }

    /// Partitions the beam half for `r_max` (see
    /// [`BeamBatch::partition_in_range`]) and returns the in-range prefix
    /// length. Anchors are unaffected — they have no range truncation.
    pub fn partition_in_range(&mut self, r_max: f32) -> usize {
        self.beams.partition_in_range(r_max)
    }

    /// World-frame X positions of the anchors, one per measurement.
    pub fn anchor_x_m(&self) -> &[f32] {
        &self.anchor_x_m
    }

    /// World-frame Y positions of the anchors, one per measurement.
    pub fn anchor_y_m(&self) -> &[f32] {
        &self.anchor_y_m
    }

    /// Measured anchor ranges, metres (non-finite entries are skipped by
    /// every scorer).
    pub fn anchor_range_m(&self) -> &[f32] {
        &self.anchor_range_m
    }

    /// Number of anchor-range measurements (usable or not).
    pub fn anchor_count(&self) -> usize {
        self.anchor_range_m.len()
    }

    /// Returns `true` when the batch carries at least one anchor
    /// measurement — the filter only dispatches the anchor kernel (and only
    /// perturbs the beam-only arithmetic) in that case.
    pub fn has_anchors(&self) -> bool {
        !self.anchor_range_m.is_empty()
    }

    /// Number of anchor measurements with a finite (usable) range — the
    /// anchors the range model will actually score.
    pub fn usable_anchor_count(&self) -> usize {
        self.anchor_range_m.iter().filter(|z| z.is_finite()).count()
    }

    /// The `i`-th anchor measurement.
    ///
    /// # Panics
    ///
    /// Panics when `i >= self.anchor_count()`.
    pub fn anchor(&self, i: usize) -> AnchorRange {
        AnchorRange {
            anchor_x_m: self.anchor_x_m[i],
            anchor_y_m: self.anchor_y_m[i],
            range_m: self.anchor_range_m[i],
        }
    }

    /// Returns `true` when the batch carries neither beams nor anchors.
    pub fn is_empty(&self) -> bool {
        self.beams.is_empty() && self.anchor_range_m.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcl_gridmap::Pose2;

    fn beam(range: f32) -> Beam {
        Beam {
            azimuth_body_rad: 0.3,
            range_m: range,
            origin_body: Pose2::default(),
        }
    }

    #[test]
    fn beam_only_batch_wraps_the_beam_batch_unchanged() {
        let beams = [beam(0.5), beam(2.0)];
        let direct = BeamBatch::from_beams(&beams);
        let obs = ObservationBatch::from_beams(&beams);
        assert_eq!(obs.beams(), &direct);
        assert!(!obs.has_anchors());
        assert_eq!(obs.anchor_count(), 0);
        assert_eq!(obs.usable_anchor_count(), 0);
        assert!(!obs.is_empty());
        assert!(ObservationBatch::new().is_empty());
    }

    #[test]
    fn anchors_are_stored_in_push_order() {
        let obs = ObservationBatch::new().with_anchors(&[
            AnchorRange::new(0.2, 0.3, 1.0),
            AnchorRange::new(3.8, 0.3, f32::NAN),
            AnchorRange::new(0.2, 3.7, 2.5),
        ]);
        assert!(obs.has_anchors());
        assert_eq!(obs.anchor_count(), 3);
        assert_eq!(obs.usable_anchor_count(), 2);
        assert_eq!(obs.anchor_x_m(), &[0.2, 3.8, 0.2]);
        assert_eq!(obs.anchor_y_m(), &[0.3, 0.3, 3.7]);
        assert_eq!(obs.anchor_range_m()[0], 1.0);
        assert!(obs.anchor_range_m()[1].is_nan());
        let second = obs.anchor(2);
        assert_eq!(second.anchor_x_m, 0.2);
        assert_eq!(second.range_m, 2.5);
        assert!(obs.anchor(0).is_usable());
        assert!(!obs.anchor(1).is_usable());
    }

    #[test]
    fn partition_delegates_to_the_beam_half() {
        let mut obs = ObservationBatch::from_beams(&[beam(0.5), beam(2.0), beam(0.7)])
            .with_anchors(&[AnchorRange::new(1.0, 1.0, 0.8)]);
        assert_eq!(obs.partition_in_range(1.5), 2);
        assert_eq!(obs.beams().in_range_prefix(1.5), Some(2));
        // Anchors untouched by the partition.
        assert_eq!(obs.anchor_range_m(), &[0.8]);
    }

    #[test]
    fn non_finite_ranges_are_flagged_unusable() {
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            assert!(!AnchorRange::new(0.0, 0.0, bad).is_usable());
        }
        assert!(AnchorRange::new(0.0, 0.0, 0.0).is_usable());
    }
}
