//! Batched beam storage for the data-parallel correction kernel.
//!
//! The observation step evaluates every beam for every particle. The
//! array-of-structs [`Beam`] representation makes each evaluation recompute the
//! beam's geometry from scratch — `cos`/`sin` of the beam azimuth *per particle
//! per beam*. [`BeamBatch`] hoists everything that does not depend on the
//! particle out of the hot loop, **once per update**:
//!
//! * the beam end point is resolved in the *drone body frame*
//!   (`sensor offset + range · (cos az, sin az)`) and stored in two contiguous
//!   arrays `end_x_body[]` / `end_y_body[]`;
//! * the measured ranges stay available in `range_m[]` so the observation model
//!   can keep skipping beams at or beyond its `r_max` truncation.
//!
//! Scoring a particle then needs exactly one `sin_cos` (of the particle's yaw)
//! plus four multiply-adds and one distance-field lookup per beam — the
//! arithmetic the paper's GAP9 kernel performs. Rotating the precomputed
//! body-frame end point is mathematically identical to [`Beam::end_point`] but
//! associates the trigonometry differently, so likelihoods may differ from the
//! per-beam path in the last float ulp.

use crate::measurement::{Beam, ToFFrame};
use crate::rig::SensorRig;
use serde::{Deserialize, Serialize};

/// A frame's worth of valid beams, flattened into contiguous per-component
/// arrays (structure of arrays) for the batched correction kernel.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct BeamBatch {
    end_x_body: Vec<f32>,
    end_y_body: Vec<f32>,
    range_m: Vec<f32>,
}

impl BeamBatch {
    /// Flattens a beam list into the batched representation.
    pub fn from_beams(beams: &[Beam]) -> Self {
        let mut batch = BeamBatch {
            end_x_body: Vec::with_capacity(beams.len()),
            end_y_body: Vec::with_capacity(beams.len()),
            range_m: Vec::with_capacity(beams.len()),
        };
        for beam in beams {
            batch.push(beam);
        }
        batch
    }

    /// Reduces a set of captured frames to beams (median per zone column,
    /// invalid zones dropped — see [`ToFFrame::to_beams`], geometry rebuilt per
    /// frame mode by [`SensorRig::frames_to_beams`]) and flattens them. This
    /// runs **once per observation update**; the per-particle kernel only
    /// reads the resulting arrays.
    pub fn from_frames(frames: &[ToFFrame]) -> Self {
        Self::from_beams(&SensorRig::frames_to_beams(frames))
    }

    /// Appends one beam.
    pub fn push(&mut self, beam: &Beam) {
        let (sin_az, cos_az) = beam.azimuth_body_rad.sin_cos();
        self.end_x_body
            .push(beam.origin_body.x + cos_az * beam.range_m);
        self.end_y_body
            .push(beam.origin_body.y + sin_az * beam.range_m);
        self.range_m.push(beam.range_m);
    }

    /// Number of beams in the batch.
    pub fn len(&self) -> usize {
        self.range_m.len()
    }

    /// Returns `true` when the batch holds no beams.
    pub fn is_empty(&self) -> bool {
        self.range_m.is_empty()
    }

    /// Body-frame X coordinates of the beam end points.
    pub fn end_x_body(&self) -> &[f32] {
        &self.end_x_body
    }

    /// Body-frame Y coordinates of the beam end points.
    pub fn end_y_body(&self) -> &[f32] {
        &self.end_y_body
    }

    /// Measured ranges, metres (used for the observation model's `r_max` skip).
    pub fn range_m(&self) -> &[f32] {
        &self.range_m
    }

    /// Number of beams with a measured range strictly below `r_max` — the beams
    /// the observation model will actually use.
    pub fn beams_within(&self, r_max: f32) -> usize {
        self.range_m.iter().filter(|&&r| r < r_max).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SensorConfig;
    use crate::measurement::{TargetStatus, ZoneMeasurement};
    use crate::rig::SensorRig;
    use crate::zones::ZoneGeometry;
    use mcl_gridmap::{MapBuilder, Pose2};
    use rand::SeedableRng;

    fn clean_rig() -> SensorRig {
        SensorRig::front_and_rear(
            SensorConfig::default()
                .with_range_noise(0.0)
                .with_interference_probability(0.0),
        )
    }

    #[test]
    fn batch_matches_per_beam_end_points_at_identity_pose() {
        let map = MapBuilder::new(4.0, 4.0, 0.05).border_walls().build();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let beams = clean_rig().observe(&map, &Pose2::new(2.0, 2.0, 0.0), 0.0, &mut rng);
        let batch = BeamBatch::from_beams(&beams);
        assert_eq!(batch.len(), beams.len());
        // At the identity pose the body frame *is* the world frame, so the
        // precomputed end points must equal Beam::end_point exactly up to the
        // trig association (loose tolerance covers the ulp difference).
        for (i, beam) in beams.iter().enumerate() {
            let reference = beam.end_point(&Pose2::default());
            assert!((batch.end_x_body()[i] - reference.x).abs() < 1e-5);
            assert!((batch.end_y_body()[i] - reference.y).abs() < 1e-5);
            assert_eq!(batch.range_m()[i], beam.range_m);
        }
    }

    #[test]
    fn from_frames_flattens_like_the_rig_conversion() {
        let map = MapBuilder::new(4.0, 4.0, 0.05).border_walls().build();
        let rig = clean_rig();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let frames = rig.capture(&map, &Pose2::new(1.5, 2.5, 0.4), &mut rng);
        let via_frames = BeamBatch::from_frames(&frames);
        let via_beams = BeamBatch::from_beams(&SensorRig::frames_to_beams(&frames));
        assert_eq!(via_frames, via_beams);
        assert_eq!(via_frames.len(), 16);
    }

    #[test]
    fn invalid_zones_never_reach_the_batch() {
        let frame = ToFFrame {
            timestamp_s: 0.0,
            mode: crate::config::ZoneMode::Grid4x4,
            mounting: Pose2::default(),
            zones: vec![
                ZoneMeasurement {
                    col: 0,
                    row: 0,
                    distance_m: 1.0,
                    status: TargetStatus::Valid,
                },
                ZoneMeasurement {
                    col: 1,
                    row: 0,
                    distance_m: 2.0,
                    status: TargetStatus::OutOfRange,
                },
            ],
        };
        let batch = BeamBatch::from_frames(&[frame]);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch.range_m()[0], 1.0);
    }

    #[test]
    fn beams_within_counts_the_rmax_skip() {
        let make = |range: f32| Beam {
            azimuth_body_rad: 0.0,
            range_m: range,
            origin_body: Pose2::default(),
        };
        let batch = BeamBatch::from_beams(&[make(0.5), make(1.5), make(2.0)]);
        assert_eq!(batch.beams_within(1.5), 1);
        assert_eq!(batch.beams_within(3.0), 3);
        assert!(BeamBatch::default().is_empty());
    }

    #[test]
    fn rear_mounting_flips_the_body_frame_end_point() {
        let beam = Beam {
            azimuth_body_rad: core::f32::consts::PI,
            range_m: 1.0,
            origin_body: Pose2::new(0.0, 0.0, core::f32::consts::PI),
        };
        let batch = BeamBatch::from_beams(&[beam]);
        assert!((batch.end_x_body()[0] + 1.0).abs() < 1e-6);
        assert!(batch.end_y_body()[0].abs() < 1e-6);
    }

    #[test]
    fn geometry_helper_still_matches_column_azimuths() {
        // Guard that from_frames uses the per-mode geometry (column azimuths)
        // and not a fixed 8x8 assumption.
        let cfg = SensorConfig::default().with_mode(crate::config::ZoneMode::Grid4x4);
        let geometry = ZoneGeometry::new(&cfg);
        assert_eq!(geometry.column_azimuths().len(), 4);
    }
}
