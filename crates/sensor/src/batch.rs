//! Batched beam storage for the data-parallel correction kernel.
//!
//! The observation step evaluates every beam for every particle. The
//! array-of-structs [`Beam`] representation makes each evaluation recompute the
//! beam's geometry from scratch — `cos`/`sin` of the beam azimuth *per particle
//! per beam*. [`BeamBatch`] hoists everything that does not depend on the
//! particle out of the hot loop, **once per update**:
//!
//! * the beam end point is resolved in the *drone body frame*
//!   (`sensor offset + range · (cos az, sin az)`) and stored in two contiguous
//!   arrays `end_x_body[]` / `end_y_body[]`;
//! * the measured ranges stay available in `range_m[]` so the observation model
//!   can keep skipping beams at or beyond its `r_max` truncation.
//!
//! Scoring a particle then needs exactly one `sin_cos` (of the particle's yaw)
//! plus four multiply-adds and one distance-field lookup per beam — the
//! arithmetic the paper's GAP9 kernel performs. Rotating the precomputed
//! body-frame end point is mathematically identical to [`Beam::end_point`] but
//! associates the trigonometry differently, so likelihoods may differ from the
//! per-beam path in the last float ulp.
//!
//! The observation model additionally skips beams at or beyond its `r_max`
//! truncation, a per-particle-per-beam branch in the hot loop. Because `r_max`
//! is fixed per filter configuration, [`BeamBatch::partition_in_range`] hoists
//! the test out of the loop **once per update**: it stably partitions the
//! arrays so every in-range beam forms a leading prefix, and records the
//! `(r_max, prefix length)` pair. The correction kernel then iterates the
//! prefix with a branch-free body. The partition is *stable* (in-range beams
//! keep their relative order), so the per-beam log-likelihood sum associates
//! exactly as in the skipping loop — results are bit-identical.

use crate::measurement::{Beam, ToFFrame};
use crate::rig::SensorRig;
use serde::{Deserialize, Serialize};

/// The cached outcome of [`BeamBatch::partition_in_range`]: every beam in
/// `0..len` measures strictly below `r_max`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct InRangePrefix {
    r_max: f32,
    len: usize,
}

/// A frame's worth of valid beams, flattened into contiguous per-component
/// arrays (structure of arrays) for the batched correction kernel.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct BeamBatch {
    end_x_body: Vec<f32>,
    end_y_body: Vec<f32>,
    range_m: Vec<f32>,
    in_range: Option<InRangePrefix>,
}

impl BeamBatch {
    /// Flattens a beam list into the batched representation.
    pub fn from_beams(beams: &[Beam]) -> Self {
        let mut batch = BeamBatch {
            end_x_body: Vec::with_capacity(beams.len()),
            end_y_body: Vec::with_capacity(beams.len()),
            range_m: Vec::with_capacity(beams.len()),
            in_range: None,
        };
        for beam in beams {
            batch.push(beam);
        }
        batch
    }

    /// Reduces a set of captured frames to beams (median per zone column,
    /// invalid zones dropped — see [`ToFFrame::to_beams`], geometry rebuilt per
    /// frame mode by [`SensorRig::frames_to_beams`]) and flattens them. This
    /// runs **once per observation update**; the per-particle kernel only
    /// reads the resulting arrays.
    pub fn from_frames(frames: &[ToFFrame]) -> Self {
        Self::from_beams(&SensorRig::frames_to_beams(frames))
    }

    /// Appends one beam. Invalidates any in-range prefix recorded by
    /// [`BeamBatch::partition_in_range`].
    pub fn push(&mut self, beam: &Beam) {
        let (sin_az, cos_az) = beam.azimuth_body_rad.sin_cos();
        self.end_x_body
            .push(beam.origin_body.x + cos_az * beam.range_m);
        self.end_y_body
            .push(beam.origin_body.y + sin_az * beam.range_m);
        self.range_m.push(beam.range_m);
        self.in_range = None;
    }

    /// Stably partitions the beam arrays so every beam with a measured range
    /// strictly below `r_max` forms a leading prefix, records the prefix for
    /// [`BeamBatch::in_range_prefix`] lookups, and returns its length.
    ///
    /// In-range beams keep their relative order (and so do the out-of-range
    /// beams moved behind them), so a correction kernel iterating only the
    /// prefix accumulates the per-beam log-likelihoods in exactly the order of
    /// the skipping loop — the scores are bit-identical, just branch-free.
    /// Call this once per update, after the batch is fully built; `r_max` is a
    /// static filter parameter, so the partition is reused by every particle.
    pub fn partition_in_range(&mut self, r_max: f32) -> usize {
        if let Some(prefix) = self.in_range {
            if prefix.r_max == r_max {
                return prefix.len;
            }
        }
        let n = self.range_m.len();
        let mut order: Vec<usize> = (0..n).filter(|&i| self.range_m[i] < r_max).collect();
        let len = order.len();
        if len < n {
            order.extend((0..n).filter(|&i| self.range_m[i] >= r_max));
            self.end_x_body = order.iter().map(|&i| self.end_x_body[i]).collect();
            self.end_y_body = order.iter().map(|&i| self.end_y_body[i]).collect();
            self.range_m = order.iter().map(|&i| self.range_m[i]).collect();
        }
        self.in_range = Some(InRangePrefix { r_max, len });
        len
    }

    /// Length of the in-range prefix previously computed by
    /// [`BeamBatch::partition_in_range`] for this exact `r_max`, or `None`
    /// when the batch has not been partitioned (or was partitioned for a
    /// different truncation) — callers then fall back to the per-beam range
    /// test.
    pub fn in_range_prefix(&self, r_max: f32) -> Option<usize> {
        self.in_range
            .filter(|prefix| prefix.r_max == r_max)
            .map(|prefix| prefix.len)
    }

    /// The in-range end-point prefix for `r_max` as `(end_x_body, end_y_body)`
    /// slices, when the batch was [partitioned](BeamBatch::partition_in_range)
    /// for exactly this truncation — the branch-free view the lane-batched
    /// correction kernel iterates once per lane group instead of re-checking
    /// the prefix per particle. `None` when the batch is unpartitioned (or was
    /// partitioned for a different truncation); callers then fall back to the
    /// per-beam range test.
    pub fn in_range_slices(&self, r_max: f32) -> Option<(&[f32], &[f32])> {
        self.in_range_prefix(r_max)
            .map(|len| (&self.end_x_body[..len], &self.end_y_body[..len]))
    }

    /// Number of beams in the batch.
    pub fn len(&self) -> usize {
        self.range_m.len()
    }

    /// Returns `true` when the batch holds no beams.
    pub fn is_empty(&self) -> bool {
        self.range_m.is_empty()
    }

    /// Body-frame X coordinates of the beam end points.
    pub fn end_x_body(&self) -> &[f32] {
        &self.end_x_body
    }

    /// Body-frame Y coordinates of the beam end points.
    pub fn end_y_body(&self) -> &[f32] {
        &self.end_y_body
    }

    /// Measured ranges, metres (used for the observation model's `r_max` skip).
    pub fn range_m(&self) -> &[f32] {
        &self.range_m
    }

    /// Number of beams with a measured range strictly below `r_max` — the beams
    /// the observation model will actually use.
    pub fn beams_within(&self, r_max: f32) -> usize {
        self.range_m.iter().filter(|&&r| r < r_max).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SensorConfig;
    use crate::measurement::{TargetStatus, ZoneMeasurement};
    use crate::rig::SensorRig;
    use crate::zones::ZoneGeometry;
    use mcl_gridmap::{MapBuilder, Pose2};
    use rand::SeedableRng;

    fn clean_rig() -> SensorRig {
        SensorRig::front_and_rear(
            SensorConfig::default()
                .with_range_noise(0.0)
                .with_interference_probability(0.0),
        )
    }

    #[test]
    fn batch_matches_per_beam_end_points_at_identity_pose() {
        let map = MapBuilder::new(4.0, 4.0, 0.05).border_walls().build();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let beams = clean_rig().observe(&map, &Pose2::new(2.0, 2.0, 0.0), 0.0, &mut rng);
        let batch = BeamBatch::from_beams(&beams);
        assert_eq!(batch.len(), beams.len());
        // At the identity pose the body frame *is* the world frame, so the
        // precomputed end points must equal Beam::end_point exactly up to the
        // trig association (loose tolerance covers the ulp difference).
        for (i, beam) in beams.iter().enumerate() {
            let reference = beam.end_point(&Pose2::default());
            assert!((batch.end_x_body()[i] - reference.x).abs() < 1e-5);
            assert!((batch.end_y_body()[i] - reference.y).abs() < 1e-5);
            assert_eq!(batch.range_m()[i], beam.range_m);
        }
    }

    #[test]
    fn from_frames_flattens_like_the_rig_conversion() {
        let map = MapBuilder::new(4.0, 4.0, 0.05).border_walls().build();
        let rig = clean_rig();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let frames = rig.capture(&map, &Pose2::new(1.5, 2.5, 0.4), &mut rng);
        let via_frames = BeamBatch::from_frames(&frames);
        let via_beams = BeamBatch::from_beams(&SensorRig::frames_to_beams(&frames));
        assert_eq!(via_frames, via_beams);
        assert_eq!(via_frames.len(), 16);
    }

    #[test]
    fn invalid_zones_never_reach_the_batch() {
        let frame = ToFFrame {
            timestamp_s: 0.0,
            mode: crate::config::ZoneMode::Grid4x4,
            mounting: Pose2::default(),
            zones: vec![
                ZoneMeasurement {
                    col: 0,
                    row: 0,
                    distance_m: 1.0,
                    status: TargetStatus::Valid,
                },
                ZoneMeasurement {
                    col: 1,
                    row: 0,
                    distance_m: 2.0,
                    status: TargetStatus::OutOfRange,
                },
            ],
        };
        let batch = BeamBatch::from_frames(&[frame]);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch.range_m()[0], 1.0);
    }

    #[test]
    fn partition_in_range_is_stable_and_cached() {
        let make = |range: f32, azimuth: f32| Beam {
            azimuth_body_rad: azimuth,
            range_m: range,
            origin_body: Pose2::default(),
        };
        let beams = [
            make(0.5, 0.0),
            make(2.0, 0.3),
            make(0.7, 0.6),
            make(1.8, 0.9),
            make(0.2, 1.2),
        ];
        let mut batch = BeamBatch::from_beams(&beams);
        assert_eq!(batch.in_range_prefix(1.5), None);
        let len = batch.partition_in_range(1.5);
        assert_eq!(len, 3);
        assert_eq!(batch.in_range_prefix(1.5), Some(3));
        assert_eq!(batch.in_range_prefix(1.0), None);
        // In-range beams keep their relative order, out-of-range follow.
        assert_eq!(batch.range_m(), &[0.5, 0.7, 0.2, 2.0, 1.8]);
        // The end-point components moved with their ranges.
        let reference = BeamBatch::from_beams(&[beams[0], beams[2], beams[4], beams[1], beams[3]]);
        assert_eq!(batch.end_x_body(), reference.end_x_body());
        assert_eq!(batch.end_y_body(), reference.end_y_body());
        // Repartitioning for the same r_max is a cached no-op.
        assert_eq!(batch.partition_in_range(1.5), 3);
        // A different truncation repartitions (0.2 and 0.5 and 0.7 < 1.0).
        assert_eq!(batch.partition_in_range(1.0), 3);
        assert_eq!(batch.in_range_prefix(1.5), None);
        // Pushing invalidates the prefix.
        batch.push(&make(0.4, 0.0));
        assert_eq!(batch.in_range_prefix(1.0), None);
    }

    #[test]
    fn in_range_slices_expose_exactly_the_partitioned_prefix() {
        let make = |range: f32, azimuth: f32| Beam {
            azimuth_body_rad: azimuth,
            range_m: range,
            origin_body: Pose2::default(),
        };
        let beams = [make(0.5, 0.0), make(2.0, 0.3), make(0.7, 0.6)];
        let mut batch = BeamBatch::from_beams(&beams);
        // Unpartitioned (and wrong-truncation) batches expose no view.
        assert!(batch.in_range_slices(1.5).is_none());
        let len = batch.partition_in_range(1.5);
        assert_eq!(len, 2);
        assert!(batch.in_range_slices(1.0).is_none());
        let (xs, ys) = batch.in_range_slices(1.5).unwrap();
        assert_eq!(xs.len(), 2);
        assert_eq!(ys.len(), 2);
        assert_eq!(xs, &batch.end_x_body()[..2]);
        assert_eq!(ys, &batch.end_y_body()[..2]);
        // An all-skipped batch exposes an empty (not absent) prefix.
        let mut far = BeamBatch::from_beams(&[make(2.0, 0.0)]);
        far.partition_in_range(1.5);
        let (xs, ys) = far.in_range_slices(1.5).unwrap();
        assert!(xs.is_empty() && ys.is_empty());
    }

    #[test]
    fn partition_of_all_in_range_beams_keeps_the_arrays_untouched() {
        let make = |range: f32| Beam {
            azimuth_body_rad: 0.1,
            range_m: range,
            origin_body: Pose2::default(),
        };
        let beams = [make(0.5), make(0.7), make(1.2)];
        let mut batch = BeamBatch::from_beams(&beams);
        let untouched = batch.clone();
        assert_eq!(batch.partition_in_range(1.5), 3);
        assert_eq!(batch.range_m(), untouched.range_m());
        assert_eq!(batch.end_x_body(), untouched.end_x_body());
        let mut empty = BeamBatch::default();
        assert_eq!(empty.partition_in_range(1.5), 0);
        assert_eq!(empty.in_range_prefix(1.5), Some(0));
    }

    #[test]
    fn beams_within_counts_the_rmax_skip() {
        let make = |range: f32| Beam {
            azimuth_body_rad: 0.0,
            range_m: range,
            origin_body: Pose2::default(),
        };
        let batch = BeamBatch::from_beams(&[make(0.5), make(1.5), make(2.0)]);
        assert_eq!(batch.beams_within(1.5), 1);
        assert_eq!(batch.beams_within(3.0), 3);
        assert!(BeamBatch::default().is_empty());
    }

    #[test]
    fn rear_mounting_flips_the_body_frame_end_point() {
        let beam = Beam {
            azimuth_body_rad: core::f32::consts::PI,
            range_m: 1.0,
            origin_body: Pose2::new(0.0, 0.0, core::f32::consts::PI),
        };
        let batch = BeamBatch::from_beams(&[beam]);
        assert!((batch.end_x_body()[0] + 1.0).abs() < 1e-6);
        assert!(batch.end_y_body()[0].abs() < 1e-6);
    }

    #[test]
    fn geometry_helper_still_matches_column_azimuths() {
        // Guard that from_frames uses the per-mode geometry (column azimuths)
        // and not a fixed 8x8 assumption.
        let cfg = SensorConfig::default().with_mode(crate::config::ZoneMode::Grid4x4);
        let geometry = ZoneGeometry::new(&cfg);
        assert_eq!(geometry.column_azimuths().len(), 4);
    }
}
