//! The simulated VL53L5CX sensor.
//!
//! [`ToFSensor::measure`] produces one frame against a ground-truth occupancy
//! map: for every zone it casts a ray from the sensor position along the zone's
//! azimuth, applies the secant correction for the zone's elevation (an inclined
//! beam hits a vertical wall slightly farther away), adds Gaussian range noise,
//! and raises the error flag when the target is out of range or a simulated
//! interference event occurs. This mirrors what the real sensor delivers to the
//! STM32 in the paper's system (Fig. 2), so the rest of the pipeline is agnostic
//! to whether frames come from hardware or from this model.

use crate::config::SensorConfig;
use crate::measurement::{TargetStatus, ToFFrame, ZoneMeasurement};
use crate::raycast::raycast_distance;
use crate::zones::ZoneGeometry;
use mcl_gridmap::{OccupancyGrid, Pose2};
use rand::Rng;
use rand_distr_normal::sample_gaussian;

/// A tiny inline Box–Muller Gaussian sampler.
///
/// `rand` ships uniform distributions in its core API; rather than pulling in
/// `rand_distr` (not in the approved dependency set), the Gaussian needed for
/// range noise and the motion model is generated with the Box–Muller transform.
mod rand_distr_normal {
    use rand::Rng;

    /// Draws one sample from `N(mean, std²)`.
    pub fn sample_gaussian<R: Rng + ?Sized>(rng: &mut R, mean: f32, std: f32) -> f32 {
        if std <= 0.0 {
            return mean;
        }
        // Box–Muller: u1 ∈ (0, 1] to avoid ln(0).
        let u1: f32 = 1.0 - rng.gen::<f32>();
        let u2: f32 = rng.gen::<f32>();
        let mag = (-2.0 * u1.ln()).sqrt();
        mean + std * mag * (core::f32::consts::TAU * u2).cos()
    }
}

/// Re-export of the Gaussian sampler for other crates in the workspace (the
/// motion model and the odometry drift model use the same primitive).
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R, mean: f32, std: f32) -> f32 {
    sample_gaussian(rng, mean, std)
}

/// One simulated VL53L5CX mounted on the drone.
#[derive(Debug, Clone, PartialEq)]
pub struct ToFSensor {
    config: SensorConfig,
    geometry: ZoneGeometry,
    mounting: Pose2,
}

impl ToFSensor {
    /// Creates a sensor with the given configuration and mounting pose in the
    /// drone body frame (identity = forward facing, yaw π = rear facing).
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SensorConfig::validate`]; sensor
    /// configurations are static data fixed at build time.
    pub fn new(config: SensorConfig, mounting: Pose2) -> Self {
        config
            .validate()
            .expect("sensor configuration must be valid");
        let geometry = ZoneGeometry::new(&config);
        ToFSensor {
            config,
            geometry,
            mounting,
        }
    }

    /// A forward-facing sensor.
    pub fn forward(config: SensorConfig) -> Self {
        ToFSensor::new(config, Pose2::default())
    }

    /// A rear-facing sensor.
    pub fn rear(config: SensorConfig) -> Self {
        ToFSensor::new(config, Pose2::new(0.0, 0.0, core::f32::consts::PI))
    }

    /// The sensor configuration.
    pub fn config(&self) -> &SensorConfig {
        &self.config
    }

    /// The zone geometry (shared with the observation model).
    pub fn geometry(&self) -> &ZoneGeometry {
        &self.geometry
    }

    /// The mounting pose in the drone body frame.
    pub fn mounting(&self) -> Pose2 {
        self.mounting
    }

    /// Simulates one frame captured at `timestamp_s` with the drone at
    /// `drone_pose` in `map`.
    pub fn measure<R: Rng + ?Sized>(
        &self,
        map: &OccupancyGrid,
        drone_pose: &Pose2,
        timestamp_s: f64,
        rng: &mut R,
    ) -> ToFFrame {
        let sensor_world = drone_pose.compose(&self.mounting);
        let mut zones = Vec::with_capacity(self.config.mode.zone_count());
        for dir in self.geometry.directions() {
            let world_angle = sensor_world.theta + dir.azimuth_rad;
            let planar = raycast_distance(
                map,
                sensor_world.position(),
                world_angle,
                self.config.max_range_m,
            );
            // An inclined beam travels 1/cos(elevation) farther to reach a
            // vertical surface at the same planar distance.
            let true_range = planar / dir.elevation_rad.cos().max(0.1);

            let interference = rng.gen_bool(self.config.interference_probability);
            let (distance_m, status) = if interference {
                (0.0, TargetStatus::Interference)
            } else if true_range >= self.config.max_range_m {
                (self.config.max_range_m, TargetStatus::OutOfRange)
            } else {
                let noisy = sample_gaussian(rng, true_range, self.config.range_noise_std_m)
                    .max(self.config.min_range_m);
                if noisy >= self.config.max_range_m {
                    (self.config.max_range_m, TargetStatus::OutOfRange)
                } else {
                    (noisy, TargetStatus::Valid)
                }
            };
            zones.push(ZoneMeasurement {
                col: dir.col,
                row: dir.row,
                distance_m,
                status,
            });
        }
        ToFFrame {
            timestamp_s,
            mode: self.config.mode,
            mounting: self.mounting,
            zones,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcl_gridmap::MapBuilder;
    use rand::SeedableRng;

    fn room() -> OccupancyGrid {
        MapBuilder::new(4.0, 4.0, 0.05).border_walls().build()
    }

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn frame_has_one_measurement_per_zone() {
        let sensor = ToFSensor::forward(SensorConfig::default());
        let frame = sensor.measure(&room(), &Pose2::new(2.0, 2.0, 0.0), 0.0, &mut rng(1));
        assert_eq!(frame.zones.len(), 64);
        assert_eq!(frame.mode, sensor.config().mode);
    }

    #[test]
    fn measured_ranges_cluster_around_the_true_wall_distance() {
        // Noise-free sensor in the middle of the room facing the east wall at
        // ~1.95 m: the central zones must report that distance (within the
        // elevation correction of the outermost rows).
        let cfg = SensorConfig::default()
            .with_range_noise(0.0)
            .with_interference_probability(0.0);
        let sensor = ToFSensor::forward(cfg);
        let frame = sensor.measure(&room(), &Pose2::new(2.0, 2.0, 0.0), 0.0, &mut rng(2));
        let central: Vec<&ZoneMeasurement> = frame
            .zones
            .iter()
            .filter(|z| (3..=4).contains(&z.row) && (3..=4).contains(&z.col))
            .collect();
        assert_eq!(central.len(), 4);
        for z in central {
            assert_eq!(z.status, TargetStatus::Valid);
            assert!((z.distance_m - 1.95).abs() < 0.1, "zone {z:?}");
        }
    }

    #[test]
    fn out_of_range_zones_are_flagged() {
        // A long corridor: looking down the corridor exceeds the 4 m range.
        let map = MapBuilder::new(10.0, 1.0, 0.05).border_walls().build();
        let cfg = SensorConfig::default().with_interference_probability(0.0);
        let sensor = ToFSensor::forward(cfg);
        let frame = sensor.measure(&map, &Pose2::new(0.5, 0.5, 0.0), 0.0, &mut rng(3));
        let central = frame
            .zones
            .iter()
            .find(|z| z.row == 3 && z.col == 3)
            .unwrap();
        assert_eq!(central.status, TargetStatus::OutOfRange);
        assert_eq!(central.distance_m, cfg.max_range_m);
    }

    #[test]
    fn interference_probability_one_flags_every_zone() {
        let cfg = SensorConfig::default().with_interference_probability(1.0);
        let sensor = ToFSensor::forward(cfg);
        let frame = sensor.measure(&room(), &Pose2::new(2.0, 2.0, 0.0), 0.0, &mut rng(4));
        assert_eq!(frame.valid_zone_count(), 0);
        assert!(frame
            .zones
            .iter()
            .all(|z| z.status == TargetStatus::Interference));
    }

    #[test]
    fn rear_sensor_sees_the_wall_behind() {
        let cfg = SensorConfig::default()
            .with_range_noise(0.0)
            .with_interference_probability(0.0);
        let rear = ToFSensor::rear(cfg);
        // Drone near the east wall facing east: the rear sensor looks west and
        // should see the far wall ~3.45 m away... but that exceeds rmax? No:
        // max range is 4 m, so it is a valid long reading.
        let frame = rear.measure(&room(), &Pose2::new(3.5, 2.0, 0.0), 0.0, &mut rng(5));
        let central = frame
            .zones
            .iter()
            .find(|z| z.row == 3 && z.col == 3)
            .unwrap();
        assert_eq!(central.status, TargetStatus::Valid);
        assert!((central.distance_m - 3.45).abs() < 0.15, "{central:?}");
    }

    #[test]
    fn noise_statistics_match_the_configuration() {
        let cfg = SensorConfig::default()
            .with_range_noise(0.03)
            .with_interference_probability(0.0);
        let sensor = ToFSensor::forward(cfg);
        let map = room();
        let mut r = rng(6);
        let mut stats = mcl_num::RunningStats::new();
        for _ in 0..300 {
            let frame = sensor.measure(&map, &Pose2::new(2.0, 2.0, 0.0), 0.0, &mut r);
            let z = frame
                .zones
                .iter()
                .find(|z| z.row == 3 && z.col == 3)
                .unwrap();
            if z.status.is_valid() {
                stats.push(f64::from(z.distance_m));
            }
        }
        assert!(stats.count() > 250);
        assert!((stats.mean() - 1.95).abs() < 0.02, "mean {}", stats.mean());
        assert!(
            (stats.stddev() - 0.03).abs() < 0.01,
            "stddev {}",
            stats.stddev()
        );
    }

    #[test]
    fn measurements_are_deterministic_for_a_fixed_seed() {
        let sensor = ToFSensor::forward(SensorConfig::default());
        let map = room();
        let a = sensor.measure(&map, &Pose2::new(1.0, 1.0, 0.3), 0.0, &mut rng(9));
        let b = sensor.measure(&map, &Pose2::new(1.0, 1.0, 0.3), 0.0, &mut rng(9));
        assert_eq!(a, b);
    }

    #[test]
    fn gaussian_helper_handles_zero_std() {
        let mut r = rng(10);
        assert_eq!(gaussian(&mut r, 1.5, 0.0), 1.5);
        // Non-zero std produces spread around the mean.
        let mut s = mcl_num::RunningStats::new();
        for _ in 0..2000 {
            s.push(f64::from(gaussian(&mut r, 2.0, 0.5)));
        }
        assert!((s.mean() - 2.0).abs() < 0.05);
        assert!((s.stddev() - 0.5).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "valid")]
    fn invalid_configuration_is_rejected() {
        let cfg = SensorConfig {
            max_range_m: -1.0,
            ..SensorConfig::default()
        };
        let _ = ToFSensor::forward(cfg);
    }
}
