//! Recorded flight sequences: the synthetic counterpart of the paper's dataset.
//!
//! A [`Sequence`] holds, for every 15 Hz step of a flight: the ground-truth pose
//! (the Vicon measurement in the paper), the odometry increment reported by the
//! Flow-deck model, and the ToF frames of the front and rear sensors. The filter
//! under evaluation only ever sees the odometry and the ToF frames; the ground
//! truth is reserved for the metrics, exactly as in the paper's off-line
//! evaluation of its recorded sequences.

use crate::metrics::StressTimeline;
use crate::odometry::{OdometryConfig, OdometryModel};
use crate::trajectory::{Trajectory, TrajectoryConfig, TrajectoryGenerator};
use mcl_core::MotionDelta;
use mcl_gridmap::{OccupancyGrid, Pose2};
use mcl_sensor::{Beam, SensorConfig, SensorRig, ToFFrame};
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One 15 Hz step of a recorded sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SequenceStep {
    /// Time since the start of the sequence, seconds.
    pub timestamp_s: f64,
    /// Ground-truth pose (only the metrics may look at this).
    pub ground_truth: Pose2,
    /// Body-frame odometry increment since the previous step, as reported by the
    /// (drifting) Flow-deck model.
    pub odometry: MotionDelta,
    /// The ToF frames captured at this step (one per mounted sensor).
    pub frames: Vec<ToFFrame>,
}

/// Configuration of the sequence generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SequenceConfig {
    /// Trajectory parameters (duration, speed, waypoint region, …).
    pub trajectory: TrajectoryConfig,
    /// Odometry noise and drift parameters.
    pub odometry: OdometryConfig,
    /// Sensor parameters shared by the mounted sensors.
    pub sensor: SensorConfig,
    /// Number of mounted sensors: 2 = front and rear (paper default), 1 = front.
    pub sensor_count: usize,
}

impl Default for SequenceConfig {
    fn default() -> Self {
        SequenceConfig {
            trajectory: TrajectoryConfig::default(),
            odometry: OdometryConfig::default(),
            sensor: SensorConfig::default(),
            sensor_count: 2,
        }
    }
}

/// A complete recorded flight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sequence {
    /// Identifier (sequence index within a scenario).
    pub id: usize,
    /// The seed the sequence was generated from.
    pub seed: u64,
    /// The configuration used to generate it.
    pub config: SequenceConfig,
    /// The per-step records.
    pub steps: Vec<SequenceStep>,
    /// Stress events injected into this sequence (kidnaps, dropout windows).
    /// Empty for nominal recordings; the metrics tracker reads it to score
    /// recovery time and dropout-window ATE.
    pub stress: StressTimeline,
}

impl Sequence {
    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when the sequence has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Duration of the sequence in seconds.
    pub fn duration_s(&self) -> f64 {
        self.steps.last().map(|s| s.timestamp_s).unwrap_or(0.0)
    }

    /// The ground-truth trajectory (for plotting / metrics).
    pub fn ground_truth(&self) -> Vec<Pose2> {
        self.steps.iter().map(|s| s.ground_truth).collect()
    }

    /// Flattens the frames of step `i` into the beam list the filter consumes.
    pub fn beams(&self, i: usize) -> Vec<Beam> {
        SensorRig::frames_to_beams(&self.steps[i].frames)
    }
}

/// Generates sequences against a ground-truth map.
#[derive(Debug, Clone)]
pub struct SequenceGenerator {
    config: SequenceConfig,
}

impl SequenceGenerator {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics when `sensor_count` is not 1 or 2 — the deck carries at most two
    /// sensors.
    pub fn new(config: SequenceConfig) -> Self {
        assert!(
            config.sensor_count == 1 || config.sensor_count == 2,
            "the multizone ToF deck carries one or two sensors"
        );
        SequenceGenerator { config }
    }

    /// The configuration.
    pub fn config(&self) -> &SequenceConfig {
        &self.config
    }

    /// Generates one sequence with the given id and seed. Generation is fully
    /// deterministic in `(config, id, seed)`.
    pub fn generate(&self, map: &OccupancyGrid, id: usize, seed: u64) -> Sequence {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ (id as u64).wrapping_mul(0x9E37));
        let trajectory = TrajectoryGenerator::new(self.config.trajectory).generate(map, &mut rng);
        self.record(map, &trajectory, id, seed, &mut rng)
    }

    /// Records a sequence along an externally supplied trajectory (used by tests
    /// and by the kidnapped-robot scenarios, which need a specific path).
    pub fn record<R: Rng + ?Sized>(
        &self,
        map: &OccupancyGrid,
        trajectory: &Trajectory,
        id: usize,
        seed: u64,
        rng: &mut R,
    ) -> Sequence {
        self.record_with_kidnaps(map, trajectory, &[], id, seed, rng)
    }

    /// [`SequenceGenerator::record`] for a kidnapped-robot flight: at every
    /// step index in `kidnap_steps` the trajectory teleports (the caller
    /// stitches the ground-truth path accordingly), and the recorded odometry
    /// reports **no motion** for that step — the Flow deck of a carried drone
    /// sees the floor leave its field of view, and the paper's firmware
    /// discards such frames. The kidnap instants are published in the
    /// sequence's [`StressTimeline`] so the metrics can score recovery time.
    ///
    /// Steps listed in `kidnap_steps` that are zero or out of range are
    /// ignored (step 0 never carries motion anyway).
    pub fn record_with_kidnaps<R: Rng + ?Sized>(
        &self,
        map: &OccupancyGrid,
        trajectory: &Trajectory,
        kidnap_steps: &[usize],
        id: usize,
        seed: u64,
        rng: &mut R,
    ) -> Sequence {
        let rig = if self.config.sensor_count == 2 {
            SensorRig::front_and_rear(self.config.sensor)
        } else {
            SensorRig::front_only(self.config.sensor)
        };
        let odometry = OdometryModel::new(self.config.odometry, trajectory.dt(), rng);

        let poses = trajectory.poses();
        let mut steps = Vec::with_capacity(poses.len());
        for (i, pose) in poses.iter().enumerate() {
            let timestamp = trajectory.timestamp(i);
            let reported = if i == 0 || kidnap_steps.contains(&i) {
                MotionDelta::default()
            } else {
                let true_delta = MotionDelta::between(&poses[i - 1], pose);
                odometry.corrupt(&true_delta, rng)
            };
            let frames = rig.capture_at(map, pose, timestamp, rng);
            steps.push(SequenceStep {
                timestamp_s: timestamp,
                ground_truth: *pose,
                odometry: reported,
                frames,
            });
        }
        let stress = StressTimeline {
            kidnap_times_s: kidnap_steps
                .iter()
                .filter(|&&s| s > 0 && s < poses.len())
                .map(|&s| trajectory.timestamp(s))
                .collect(),
            ..StressTimeline::default()
        };
        Sequence {
            id,
            seed,
            config: self.config,
            steps,
            stress,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcl_gridmap::DroneMaze;

    fn short_config(region: (f32, f32, f32, f32)) -> SequenceConfig {
        SequenceConfig {
            trajectory: TrajectoryConfig {
                duration_s: 10.0,
                region: Some(region),
                ..TrajectoryConfig::default()
            },
            ..SequenceConfig::default()
        }
    }

    #[test]
    fn generated_sequence_has_one_record_per_sample() {
        let maze = DroneMaze::paper_layout(1);
        let config = short_config(maze.physical_region());
        let sequence = SequenceGenerator::new(config).generate(maze.map(), 0, 11);
        assert_eq!(sequence.len(), 150);
        assert!(!sequence.is_empty());
        assert!((sequence.duration_s() - 149.0 / 15.0).abs() < 1e-6);
        assert_eq!(sequence.ground_truth().len(), 150);
        for step in &sequence.steps {
            assert_eq!(step.frames.len(), 2);
        }
        // The first step carries no motion.
        assert!(sequence.steps[0].odometry.is_zero());
    }

    #[test]
    fn single_sensor_sequences_have_one_frame_per_step() {
        let maze = DroneMaze::paper_layout(2);
        let mut config = short_config(maze.physical_region());
        config.sensor_count = 1;
        let sequence = SequenceGenerator::new(config).generate(maze.map(), 3, 5);
        assert_eq!(sequence.steps[10].frames.len(), 1);
        // Fewer sensors → fewer beams per step.
        assert!(sequence.beams(10).len() <= 8);
    }

    #[test]
    fn generation_is_deterministic_in_id_and_seed() {
        let maze = DroneMaze::paper_layout(3);
        let config = short_config(maze.physical_region());
        let generator = SequenceGenerator::new(config);
        let a = generator.generate(maze.map(), 0, 7);
        let b = generator.generate(maze.map(), 0, 7);
        let c = generator.generate(maze.map(), 1, 7);
        let d = generator.generate(maze.map(), 0, 8);
        assert_eq!(a, b);
        assert_ne!(a.steps, c.steps);
        assert_ne!(a.steps, d.steps);
    }

    #[test]
    fn odometry_integration_drifts_from_ground_truth() {
        let maze = DroneMaze::paper_layout(4);
        let mut config = short_config(maze.physical_region());
        config.trajectory.duration_s = 40.0;
        let sequence = SequenceGenerator::new(config).generate(maze.map(), 0, 21);
        // Integrate the reported odometry from the true start pose.
        let mut integrated = sequence.steps[0].ground_truth;
        for step in &sequence.steps[1..] {
            integrated = integrated.compose(&Pose2::new(
                step.odometry.dx,
                step.odometry.dy,
                step.odometry.dtheta,
            ));
        }
        let truth = sequence.steps.last().unwrap().ground_truth;
        let drift = integrated.translation_distance(&truth);
        assert!(
            drift > 0.05,
            "odometry should drift over a 40 s flight (drift {drift} m)"
        );
    }

    #[test]
    fn beams_are_consistent_with_the_frames() {
        let maze = DroneMaze::paper_layout(5);
        let config = short_config(maze.physical_region());
        let sequence = SequenceGenerator::new(config).generate(maze.map(), 0, 2);
        let beams = sequence.beams(20);
        let valid_zones: usize = sequence.steps[20]
            .frames
            .iter()
            .map(|f| f.valid_zone_count())
            .sum();
        // One beam per zone column with at least one valid zone: never more than
        // 8 per sensor and never more than the number of valid zones.
        assert!(beams.len() <= 16);
        assert!(beams.len() <= valid_zones);
    }

    #[test]
    fn kidnap_steps_mask_the_reported_odometry() {
        use crate::trajectory::{Trajectory, TrajectoryGenerator};
        use rand::SeedableRng;

        let maze = DroneMaze::paper_layout(6);
        let config = short_config(maze.physical_region());
        let generator = SequenceGenerator::new(config);
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);

        // Stitch a trajectory that teleports at step 40.
        let tg = TrajectoryGenerator::new(config.trajectory);
        let head = tg.generate_from(maze.map(), Pose2::new(1.0, 1.0, 0.0), 40, &mut rng);
        let tail = tg.generate_from(maze.map(), Pose2::new(3.0, 3.0, 2.0), 60, &mut rng);
        let mut poses = head.poses().to_vec();
        poses.extend_from_slice(tail.poses());
        let stitched = Trajectory::new(poses, head.dt());

        let sequence = generator.record_with_kidnaps(maze.map(), &stitched, &[40], 0, 31, &mut rng);
        assert_eq!(sequence.len(), 100);
        // The ground truth jumps at the kidnap step…
        let jump = sequence.steps[39]
            .ground_truth
            .translation_distance(&sequence.steps[40].ground_truth);
        assert!(jump > 1.0, "kidnap jump only {jump} m");
        // …but the recorded odometry claims the drone did not move.
        assert!(sequence.steps[40].odometry.is_zero());
        // The kidnap instant lands in the stress timeline (40 / 15 Hz).
        assert_eq!(sequence.stress.kidnap_times_s.len(), 1);
        assert!((sequence.stress.kidnap_times_s[0] - 40.0 / 15.0).abs() < 1e-5);
        // Nominal recordings carry an empty timeline.
        let nominal = generator.generate(maze.map(), 0, 31);
        assert!(nominal.stress.is_empty());
    }

    #[test]
    #[should_panic(expected = "one or two sensors")]
    fn invalid_sensor_count_is_rejected() {
        let config = SequenceConfig {
            sensor_count: 3,
            ..SequenceConfig::default()
        };
        let _ = SequenceGenerator::new(config);
    }
}

#[cfg(test)]
mod serde_shim {
    //! `Sequence` must be serializable so experiments can cache generated
    //! datasets; this asserts the bound without pulling in a JSON crate.
    use super::Sequence;

    fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}

    #[test]
    fn sequence_implements_serde() {
        assert_serde::<Sequence>();
    }
}
