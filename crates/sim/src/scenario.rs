//! The paper's end-to-end evaluation scenario.
//!
//! [`PaperScenario`] bundles everything §IV of the paper needs: the 31.2 m²
//! drone-maze map at 0.05 m resolution, its distance transforms in the three
//! storage precisions, a set of recorded flight sequences, and a dispatcher that
//! evaluates any of the four pipeline configurations (`fp32`, `fp32 1tof`,
//! `fp32qm`, `fp16qm`) at any particle count on any sequence. The experiment
//! binaries in `mcl-bench` sweep over particle counts, sequences and seeds with
//! this type; the unit tests and examples use the scaled-down
//! [`PaperScenario::quick`] variant.

use crate::metrics::SequenceResult;
use crate::runner::{run_sequence, RunnerConfig, SensingMode, UwbRig};
use crate::sequence::{Sequence, SequenceConfig, SequenceGenerator};
use crate::trajectory::TrajectoryConfig;
use mcl_core::precision::{MapPrecision, ParticlePrecision, PipelineConfig};
use mcl_core::{AdaptiveConfig, KernelBackend, MclConfig, MonteCarloLocalization};
use mcl_gridmap::{
    DistanceField, DroneMaze, EuclideanDistanceField, F16DistanceField, OccupancyGrid,
    QuantizedDistanceField,
};
use mcl_num::{Scalar, F16};

/// The full evaluation environment: maze, distance fields and sequences.
#[derive(Debug, Clone)]
pub struct PaperScenario {
    maze: DroneMaze,
    edt_fp32: EuclideanDistanceField,
    edt_f16: F16DistanceField,
    edt_quantized: QuantizedDistanceField,
    sequences: Vec<Sequence>,
    sequence_config: SequenceConfig,
    r_max: f32,
    sensing: SensingMode,
    uwb: UwbRig,
}

impl PaperScenario {
    /// The paper's evaluation setup: six ~60 s sequences in the 31.2 m² maze.
    ///
    /// Generating six full sequences casts a few hundred thousand rays; expect a
    /// couple of seconds in release builds. Use [`PaperScenario::quick`] for
    /// tests.
    pub fn paper(seed: u64) -> Self {
        Self::with_settings(seed, 6, 60.0)
    }

    /// A scaled-down scenario (one ~12 s sequence) for unit tests and examples.
    pub fn quick(seed: u64) -> Self {
        Self::with_settings(seed, 1, 12.0)
    }

    /// A scenario with a custom number of sequences and duration.
    pub fn with_settings(seed: u64, num_sequences: usize, duration_s: f32) -> Self {
        let maze = DroneMaze::paper_layout(seed);
        let sequence_config = SequenceConfig {
            trajectory: TrajectoryConfig {
                duration_s,
                region: Some(maze.physical_region()),
                ..TrajectoryConfig::default()
            },
            ..SequenceConfig::default()
        };
        let generator = SequenceGenerator::new(sequence_config);
        let sequences = (0..num_sequences)
            .map(|id| generator.generate(maze.map(), id, seed.wrapping_add(id as u64 * 101)))
            .collect();
        Self::from_parts(maze, sequences, sequence_config)
    }

    /// Assembles a scenario from an already-generated world and its (possibly
    /// stress-injected) sequences — the entry point used by
    /// [`crate::suite::ScenarioSpec::build`]. The three distance-field
    /// precisions are computed here with the paper's 1.5 m truncation, so every
    /// suite world is evaluated through exactly the pipeline the paper maze is.
    pub fn from_parts(
        maze: DroneMaze,
        sequences: Vec<Sequence>,
        sequence_config: SequenceConfig,
    ) -> Self {
        let r_max = 1.5;
        let edt_fp32 = EuclideanDistanceField::compute(maze.map(), r_max);
        let edt_f16 = edt_fp32.to_f16();
        let edt_quantized = edt_fp32.quantize();
        PaperScenario {
            maze,
            edt_fp32,
            edt_f16,
            edt_quantized,
            sequences,
            sequence_config,
            r_max,
            sensing: SensingMode::TofOnly,
            uwb: UwbRig::default(),
        }
    }

    /// Returns the scenario evaluated under `sensing` against `rig` — the
    /// UWB infrastructure is part of the environment, so every evaluation of
    /// the scenario (serial, batched, suite) ranges against the same anchors.
    /// The default ([`SensingMode::TofOnly`], no anchors) is byte-identical
    /// to the pre-fusion evaluation.
    pub fn with_sensing(mut self, sensing: SensingMode, rig: UwbRig) -> Self {
        self.sensing = sensing;
        self.uwb = rig;
        self
    }

    /// The sensor modalities evaluations of this scenario feed the filter.
    pub fn sensing(&self) -> SensingMode {
        self.sensing
    }

    /// The UWB infrastructure of the scenario (empty unless configured via
    /// [`PaperScenario::with_sensing`]).
    pub fn uwb_rig(&self) -> &UwbRig {
        &self.uwb
    }

    /// The maze environment.
    pub fn maze(&self) -> &DroneMaze {
        &self.maze
    }

    /// The occupancy grid map.
    pub fn map(&self) -> &OccupancyGrid {
        self.maze.map()
    }

    /// The full-precision distance transform.
    pub fn edt_fp32(&self) -> &EuclideanDistanceField {
        &self.edt_fp32
    }

    /// The quantized distance transform.
    pub fn edt_quantized(&self) -> &QuantizedDistanceField {
        &self.edt_quantized
    }

    /// The binary16 distance transform.
    pub fn edt_f16(&self) -> &F16DistanceField {
        &self.edt_f16
    }

    /// The recorded sequences.
    pub fn sequences(&self) -> &[Sequence] {
        &self.sequences
    }

    /// The sequence generation settings (useful for documentation output).
    pub fn sequence_config(&self) -> &SequenceConfig {
        &self.sequence_config
    }

    /// The EDT truncation distance.
    pub fn r_max(&self) -> f32 {
        self.r_max
    }

    /// Builds the [`MclConfig`] used by the evaluations.
    pub fn mcl_config(&self, particles: usize, seed: u64) -> MclConfig {
        MclConfig::default()
            .with_particles(particles)
            .with_seed(seed)
    }

    /// The adaptive population configuration an adaptive evaluation of
    /// `particles` uses: KLD population control over
    /// `[max(particles/8, 64), 2·particles]`, starting from `particles`
    /// itself. An evaluation at the paper's 2048-particle quick-sweep count
    /// therefore sweeps `[256, 4096]` — it can shrink to an eighth once
    /// converged and grow past the fixed baseline while the belief is still
    /// multi-modal.
    pub fn adaptive_config(particles: usize) -> AdaptiveConfig {
        let min = (particles / 8).max(64).min(particles.max(1));
        AdaptiveConfig::enabled().with_population_range(min, particles.saturating_mul(2).max(min))
    }

    /// Evaluates one pipeline configuration on one sequence with global
    /// (uniform) initialization — the paper's main experiment. Runs under the
    /// default kernel backend (honouring the `MCL_KERNEL_BACKEND` override);
    /// see [`PaperScenario::evaluate_with_backend`] for an explicit choice.
    pub fn evaluate(
        &self,
        sequence: &Sequence,
        pipeline: PipelineConfig,
        particles: usize,
        seed: u64,
    ) -> SequenceResult {
        self.evaluate_with_backend(
            sequence,
            pipeline,
            particles,
            seed,
            KernelBackend::from_env().unwrap_or_default(),
        )
    }

    /// [`PaperScenario::evaluate`] with an explicit [`KernelBackend`] — the
    /// entry point `mcl_sim::run_batch` jobs select their backend through.
    /// The backends are bit-identical, so for fixed-precision arithmetic the
    /// returned metrics do not depend on the choice (pinned by a unit test in
    /// `crate::batch`); the knob exists for performance studies and the
    /// equivalence harness.
    pub fn evaluate_with_backend(
        &self,
        sequence: &Sequence,
        pipeline: PipelineConfig,
        particles: usize,
        seed: u64,
        backend: KernelBackend,
    ) -> SequenceResult {
        self.evaluate_with_options(sequence, pipeline, particles, seed, backend, false)
    }

    /// [`PaperScenario::evaluate_with_backend`] with the adaptive population
    /// switch exposed: when `adaptive` is true the filter runs under
    /// [`PaperScenario::adaptive_config`]`(particles)` — KLD-sampling picks
    /// the population every update and the Augmented-MCL monitor injects
    /// recovery particles after likelihood collapses. The result's
    /// `mean_particles` then reports the population the run actually
    /// averaged. `adaptive == false` is byte-identical to
    /// [`PaperScenario::evaluate_with_backend`].
    pub fn evaluate_with_options(
        &self,
        sequence: &Sequence,
        pipeline: PipelineConfig,
        particles: usize,
        seed: u64,
        backend: KernelBackend,
        adaptive: bool,
    ) -> SequenceResult {
        let runner = RunnerConfig {
            sensor_count: pipeline.sensor_count,
            sensing: self.sensing,
            uwb: self.uwb,
            ..RunnerConfig::default()
        };
        let mut config = self
            .mcl_config(particles, seed)
            .with_kernel_backend(backend);
        if adaptive {
            config = config.with_adaptive(Self::adaptive_config(particles));
        }
        match (pipeline.particle_precision, pipeline.map_precision) {
            (ParticlePrecision::Fp32, MapPrecision::Fp32) => {
                self.run::<f32, _>(config, self.edt_fp32.clone(), sequence, &runner, seed)
            }
            (ParticlePrecision::Fp32, MapPrecision::Fp16) => {
                self.run::<f32, _>(config, self.edt_f16.clone(), sequence, &runner, seed)
            }
            (ParticlePrecision::Fp32, MapPrecision::Quantized) => {
                self.run::<f32, _>(config, self.edt_quantized.clone(), sequence, &runner, seed)
            }
            (ParticlePrecision::Fp16, MapPrecision::Fp32) => {
                self.run::<F16, _>(config, self.edt_fp32.clone(), sequence, &runner, seed)
            }
            (ParticlePrecision::Fp16, MapPrecision::Fp16) => {
                self.run::<F16, _>(config, self.edt_f16.clone(), sequence, &runner, seed)
            }
            (ParticlePrecision::Fp16, MapPrecision::Quantized) => {
                self.run::<F16, _>(config, self.edt_quantized.clone(), sequence, &runner, seed)
            }
        }
    }

    fn run<S: Scalar, D: DistanceField>(
        &self,
        config: MclConfig,
        field: D,
        sequence: &Sequence,
        runner: &RunnerConfig,
        seed: u64,
    ) -> SequenceResult {
        let mut filter = MonteCarloLocalization::<S, D>::new(config, field)
            .expect("scenario configurations are valid");
        filter
            .initialize_uniform(self.map(), seed)
            .expect("the drone maze has free space");
        run_sequence(&mut filter, sequence, runner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scenario_has_the_paper_map_and_one_sequence() {
        let scenario = PaperScenario::quick(2);
        assert!((scenario.map().area_m2() - 31.2).abs() < 0.3);
        assert_eq!(scenario.sequences().len(), 1);
        assert_eq!(scenario.sequences()[0].len(), 180);
        assert_eq!(scenario.r_max(), 1.5);
        assert_eq!(scenario.edt_fp32().width(), scenario.map().width());
        assert_eq!(scenario.mcl_config(64, 3).num_particles, 64);
    }

    #[test]
    fn all_four_paper_configurations_run_on_a_quick_scenario() {
        let scenario = PaperScenario::quick(4);
        let sequence = &scenario.sequences()[0];
        for pipeline in PipelineConfig::paper_configs() {
            let result = scenario.evaluate(sequence, pipeline, 256, 1);
            assert_eq!(
                result.steps,
                sequence.len(),
                "configuration {} did not score every step",
                pipeline.name
            );
        }
    }

    #[test]
    fn more_particles_do_not_hurt_convergence() {
        // Global localization is stochastic on a single short sequence, so this
        // checks across a couple of seeds that a healthy particle count converges
        // at least once — mirroring the trend of the paper's Fig. 7 without
        // demanding per-run determinism.
        let scenario = PaperScenario::with_settings(8, 1, 45.0);
        let sequence = &scenario.sequences()[0];
        let converged_any = (1..=3).any(|seed| {
            scenario
                .evaluate(sequence, PipelineConfig::FP32, 4096, seed)
                .converged
        });
        assert!(
            converged_any,
            "no 4096-particle run converged on a 45 s sequence"
        );
    }
}
