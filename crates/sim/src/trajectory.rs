//! Waypoint trajectories through the free space of a maze.
//!
//! The paper's sequences are manual flights through the physical maze at the
//! gentle speeds a Crazyflie flies indoors. The generator reproduces that: it
//! picks random waypoints inside a designated region of the map (with clearance
//! from the walls), checks line-of-sight between consecutive waypoints with the
//! sensor ray caster, and flies the path with bounded linear speed and yaw rate,
//! yaw always turning towards the direction of travel. The result is sampled at
//! the ToF frame rate (15 Hz), which is also the rate the paper's pipeline runs
//! its updates at.

use mcl_gridmap::{OccupancyGrid, Point2, Pose2};
use mcl_num::angular_difference;
use mcl_sensor::raycast::{raycast, RaycastHit};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the trajectory generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryConfig {
    /// Duration of the flight in seconds (the paper's sequences are ~60 s).
    pub duration_s: f32,
    /// Sample rate in hertz (15 Hz, the ToF frame rate).
    pub rate_hz: f32,
    /// Maximum linear speed in metres per second.
    pub max_speed_mps: f32,
    /// Maximum yaw rate in radians per second.
    pub max_yaw_rate_rps: f32,
    /// Minimum clearance between a waypoint and the nearest wall, metres.
    pub waypoint_clearance_m: f32,
    /// Region `(x0, y0, x1, y1)` waypoints are restricted to; `None` uses the
    /// whole map (the paper restricts flights to the 16 m² physical maze).
    pub region: Option<(f32, f32, f32, f32)>,
}

impl Default for TrajectoryConfig {
    fn default() -> Self {
        TrajectoryConfig {
            duration_s: 60.0,
            rate_hz: 15.0,
            max_speed_mps: 0.5,
            max_yaw_rate_rps: 1.2,
            waypoint_clearance_m: 0.25,
            region: None,
        }
    }
}

impl TrajectoryConfig {
    /// Number of samples the trajectory will contain.
    pub fn sample_count(&self) -> usize {
        (self.duration_s * self.rate_hz).ceil() as usize
    }

    /// The sampling period in seconds.
    pub fn dt(&self) -> f32 {
        1.0 / self.rate_hz
    }
}

/// A time-stamped sequence of ground-truth poses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    dt: f32,
    poses: Vec<Pose2>,
}

impl Trajectory {
    /// Creates a trajectory from its samples and the sampling period.
    ///
    /// # Panics
    ///
    /// Panics when `poses` is empty or `dt` is not positive.
    pub fn new(poses: Vec<Pose2>, dt: f32) -> Self {
        assert!(!poses.is_empty(), "a trajectory needs at least one pose");
        assert!(dt > 0.0, "the sampling period must be positive");
        Trajectory { dt, poses }
    }

    /// The sampling period in seconds.
    pub fn dt(&self) -> f32 {
        self.dt
    }

    /// The poses in order.
    pub fn poses(&self) -> &[Pose2] {
        &self.poses
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.poses.len()
    }

    /// True when the trajectory has no samples (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.poses.is_empty()
    }

    /// Total duration in seconds.
    pub fn duration_s(&self) -> f32 {
        self.dt * (self.poses.len().saturating_sub(1)) as f32
    }

    /// Total distance travelled, metres.
    pub fn path_length_m(&self) -> f32 {
        self.poses
            .windows(2)
            .map(|w| w[0].translation_distance(&w[1]))
            .sum()
    }

    /// The timestamp of sample `i`, seconds.
    pub fn timestamp(&self, i: usize) -> f64 {
        f64::from(self.dt) * i as f64
    }
}

/// Generates waypoint trajectories inside a map.
#[derive(Debug, Clone)]
pub struct TrajectoryGenerator {
    config: TrajectoryConfig,
}

impl TrajectoryGenerator {
    /// Creates a generator.
    pub fn new(config: TrajectoryConfig) -> Self {
        TrajectoryGenerator { config }
    }

    /// The generator configuration.
    pub fn config(&self) -> &TrajectoryConfig {
        &self.config
    }

    /// Generates a trajectory through the free space of `map`.
    ///
    /// # Panics
    ///
    /// Panics when the map (restricted to the configured region) contains no
    /// candidate waypoint with the required clearance.
    pub fn generate<R: Rng + ?Sized>(&self, map: &OccupancyGrid, rng: &mut R) -> Trajectory {
        // One candidate scan serves both the start draw and the flight: the
        // clearance scan is the expensive part of generation.
        let candidates = self.checked_candidates(map);
        let start = self.random_start_from(&candidates, rng);
        self.generate_with_candidates(map, &candidates, start, self.config.sample_count(), rng)
    }

    /// Draws a random start pose: a clearance-respecting waypoint candidate
    /// with a uniform heading — exactly the draw [`TrajectoryGenerator::generate`]
    /// opens with. Exposed so the scenario suite can draw kidnap teleport
    /// targets from the same distribution.
    ///
    /// # Panics
    ///
    /// Panics when the map (restricted to the configured region) contains no
    /// candidate waypoint with the required clearance.
    pub fn random_start<R: Rng + ?Sized>(&self, map: &OccupancyGrid, rng: &mut R) -> Pose2 {
        self.random_start_from(&self.checked_candidates(map), rng)
    }

    fn random_start_from<R: Rng + ?Sized>(&self, candidates: &[Point2], rng: &mut R) -> Pose2 {
        let start = candidates[rng.gen_range(0..candidates.len())];
        Pose2::new(start.x, start.y, rng.gen_range(0.0..core::f32::consts::TAU))
    }

    /// Generates a `samples`-long trajectory starting at the given pose (used
    /// by the scenario suite to stitch kidnapped-robot flights from segments).
    /// `generate` is equivalent to `generate_from` at a [`TrajectoryGenerator::random_start`]
    /// with the configured sample count.
    ///
    /// # Panics
    ///
    /// Panics when `samples` is zero or no waypoint candidate exists.
    pub fn generate_from<R: Rng + ?Sized>(
        &self,
        map: &OccupancyGrid,
        start: Pose2,
        samples: usize,
        rng: &mut R,
    ) -> Trajectory {
        let candidates = self.checked_candidates(map);
        self.generate_with_candidates(map, &candidates, start, samples, rng)
    }

    fn checked_candidates(&self, map: &OccupancyGrid) -> Vec<Point2> {
        let candidates = self.waypoint_candidates(map);
        assert!(
            !candidates.is_empty(),
            "no free cells with the required clearance inside the waypoint region"
        );
        candidates
    }

    fn generate_with_candidates<R: Rng + ?Sized>(
        &self,
        map: &OccupancyGrid,
        candidates: &[Point2],
        start: Pose2,
        samples: usize,
        rng: &mut R,
    ) -> Trajectory {
        assert!(samples > 0, "a trajectory needs at least one sample");
        let dt = self.config.dt();
        let max_step = self.config.max_speed_mps * dt;
        let max_turn = self.config.max_yaw_rate_rps * dt;

        let mut pose = start;
        let mut target = self.pick_target(map, &pose, candidates, rng);
        let mut poses = Vec::with_capacity(samples);
        poses.push(pose);

        for _ in 1..samples {
            // Re-target when the current waypoint is reached.
            if pose.position().distance(&target) < 0.15 {
                target = self.pick_target(map, &pose, candidates, rng);
            }
            let to_target = target - pose.position();
            let desired_heading = to_target.y.atan2(to_target.x);
            let heading_error = angular_difference(desired_heading, pose.theta);
            let turn = heading_error.clamp(-max_turn, max_turn);
            // Only move forward when roughly facing the target, like a real
            // yaw-then-translate indoor flight.
            let forward = if heading_error.abs() < 0.6 {
                max_step.min(to_target.norm())
            } else {
                0.0
            };
            let next = pose.compose(&Pose2::new(forward, 0.0, turn));
            // Never fly into a wall: if the step would leave free space, hold
            // position and keep turning (the next target pick will resolve it).
            pose = if map.is_free_world(next.x, next.y) {
                next
            } else {
                target = self.pick_target(map, &pose, candidates, rng);
                Pose2::new(pose.x, pose.y, next.theta)
            };
            poses.push(pose);
        }
        Trajectory::new(poses, dt)
    }

    /// All waypoint candidates: free cells with the configured clearance inside
    /// the configured region.
    fn waypoint_candidates(&self, map: &OccupancyGrid) -> Vec<Point2> {
        let clearance_cells = (self.config.waypoint_clearance_m / map.resolution()).ceil() as i64;
        let region = self
            .config
            .region
            .unwrap_or((0.0, 0.0, map.width_m(), map.height_m()));
        map.indices()
            .filter_map(|idx| {
                let centre = map.cell_to_world(idx);
                if centre.x < region.0
                    || centre.y < region.1
                    || centre.x > region.2
                    || centre.y > region.3
                {
                    return None;
                }
                for dr in -clearance_cells..=clearance_cells {
                    for dc in -clearance_cells..=clearance_cells {
                        let col = idx.col as i64 + dc;
                        let row = idx.row as i64 + dr;
                        if col < 0 || row < 0 {
                            return None;
                        }
                        let n = mcl_gridmap::CellIndex::new(col as usize, row as usize);
                        if !map.contains(n) || map.state(n) != mcl_gridmap::CellState::Free {
                            return None;
                        }
                    }
                }
                Some(centre)
            })
            .collect()
    }

    /// Picks a random candidate with line of sight from the current pose.
    fn pick_target<R: Rng + ?Sized>(
        &self,
        map: &OccupancyGrid,
        pose: &Pose2,
        candidates: &[Point2],
        rng: &mut R,
    ) -> Point2 {
        for _ in 0..64 {
            let candidate = candidates[rng.gen_range(0..candidates.len())];
            let to = candidate - pose.position();
            let distance = to.norm();
            if distance < 0.3 {
                continue;
            }
            let angle = to.y.atan2(to.x);
            let clear = match raycast(map, pose.position(), angle, distance) {
                RaycastHit::Miss => true,
                RaycastHit::Obstacle { distance_m, .. } => distance_m > distance,
            };
            if clear {
                return candidate;
            }
        }
        // Nothing visible (boxed into a corner): stay near the current position.
        pose.position()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcl_gridmap::{DroneMaze, MapBuilder};
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn config_sample_count_and_dt() {
        let cfg = TrajectoryConfig::default();
        assert_eq!(cfg.sample_count(), 900);
        assert!((cfg.dt() - 1.0 / 15.0).abs() < 1e-6);
    }

    #[test]
    fn trajectory_accessors() {
        let poses = vec![
            Pose2::new(0.0, 0.0, 0.0),
            Pose2::new(1.0, 0.0, 0.0),
            Pose2::new(1.0, 1.0, 0.0),
        ];
        let t = Trajectory::new(poses, 0.5);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.duration_s(), 1.0);
        assert!((t.path_length_m() - 2.0).abs() < 1e-6);
        assert_eq!(t.timestamp(2), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one pose")]
    fn empty_trajectory_is_rejected() {
        let _ = Trajectory::new(vec![], 0.1);
    }

    #[test]
    fn generated_trajectory_stays_in_free_space() {
        let maze = DroneMaze::paper_layout(3);
        let map = maze.map();
        let cfg = TrajectoryConfig {
            duration_s: 20.0,
            region: Some(maze.physical_region()),
            ..TrajectoryConfig::default()
        };
        let t = TrajectoryGenerator::new(cfg).generate(map, &mut rng(1));
        assert_eq!(t.len(), 300);
        for p in t.poses() {
            assert!(
                map.is_free_world(p.x, p.y),
                "trajectory leaves free space at {p}"
            );
        }
        // The drone actually moves.
        assert!(
            t.path_length_m() > 1.0,
            "path too short: {}",
            t.path_length_m()
        );
    }

    #[test]
    fn trajectory_respects_speed_and_yaw_limits() {
        let maze = DroneMaze::paper_layout(4);
        let cfg = TrajectoryConfig {
            duration_s: 15.0,
            region: Some(maze.physical_region()),
            ..TrajectoryConfig::default()
        };
        let t = TrajectoryGenerator::new(cfg).generate(maze.map(), &mut rng(2));
        let max_step = cfg.max_speed_mps * cfg.dt() + 1e-5;
        let max_turn = cfg.max_yaw_rate_rps * cfg.dt() + 1e-5;
        for w in t.poses().windows(2) {
            assert!(w[0].translation_distance(&w[1]) <= max_step);
            assert!(w[0].rotation_distance(&w[1]) <= max_turn);
        }
    }

    #[test]
    fn waypoints_respect_the_region_restriction() {
        let maze = DroneMaze::paper_layout(5);
        let cfg = TrajectoryConfig {
            duration_s: 30.0,
            region: Some(maze.physical_region()),
            ..TrajectoryConfig::default()
        };
        let t = TrajectoryGenerator::new(cfg).generate(maze.map(), &mut rng(3));
        let (x0, y0, x1, y1) = maze.physical_region();
        for p in t.poses() {
            assert!(p.x >= x0 - 0.2 && p.x <= x1 + 0.2, "x {p}");
            assert!(p.y >= y0 - 0.2 && p.y <= y1 + 0.2, "y {p}");
        }
    }

    #[test]
    fn generation_is_deterministic_in_the_rng_seed() {
        let maze = DroneMaze::paper_layout(6);
        let cfg = TrajectoryConfig {
            duration_s: 10.0,
            region: Some(maze.physical_region()),
            ..TrajectoryConfig::default()
        };
        let a = TrajectoryGenerator::new(cfg).generate(maze.map(), &mut rng(9));
        let b = TrajectoryGenerator::new(cfg).generate(maze.map(), &mut rng(9));
        let c = TrajectoryGenerator::new(cfg).generate(maze.map(), &mut rng(10));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn generate_is_random_start_plus_generate_from() {
        // The refactor for the scenario suite must not change the RNG draw
        // order of the original entry point.
        let maze = DroneMaze::paper_layout(7);
        let cfg = TrajectoryConfig {
            duration_s: 8.0,
            region: Some(maze.physical_region()),
            ..TrajectoryConfig::default()
        };
        let generator = TrajectoryGenerator::new(cfg);
        let direct = generator.generate(maze.map(), &mut rng(5));
        let mut r = rng(5);
        let start = generator.random_start(maze.map(), &mut r);
        let stitched = generator.generate_from(maze.map(), start, cfg.sample_count(), &mut r);
        assert_eq!(direct, stitched);
    }

    #[test]
    fn generate_from_starts_at_the_given_pose_and_length() {
        let maze = DroneMaze::paper_layout(8);
        let cfg = TrajectoryConfig {
            region: Some(maze.physical_region()),
            ..TrajectoryConfig::default()
        };
        let generator = TrajectoryGenerator::new(cfg);
        let start = Pose2::new(1.0, 1.0, 0.3);
        let t = generator.generate_from(maze.map(), start, 45, &mut rng(4));
        assert_eq!(t.len(), 45);
        assert_eq!(t.poses()[0], start);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_sample_segment_is_rejected() {
        let maze = DroneMaze::paper_layout(9);
        let generator = TrajectoryGenerator::new(TrajectoryConfig::default());
        let _ = generator.generate_from(maze.map(), Pose2::default(), 0, &mut rng(1));
    }

    #[test]
    #[should_panic(expected = "no free cells")]
    fn fully_blocked_map_is_rejected() {
        let blocked = MapBuilder::new(1.0, 1.0, 0.05)
            .filled_rect((0.0, 0.0), (1.0, 1.0))
            .build();
        let _ =
            TrajectoryGenerator::new(TrajectoryConfig::default()).generate(&blocked, &mut rng(0));
    }
}
