//! The scenario suite: a registry of procedurally generated worlds and
//! failure-mode sequences beyond the paper's single office-maze evaluation.
//!
//! The paper's §V evaluates one arena under nominal flight conditions. Global
//! localization quality, however, is dominated by environment geometry and
//! sensor-failure modes, so this module spans both axes:
//!
//! * **Worlds** — every [`WorldKind`] archetype (the paper maze plus the
//!   [`mcl_gridmap::worldgen`] office / symmetric-corridor / open-hall /
//!   warehouse generators), each seed-deterministic.
//! * **Stress events** — sequence-level failure modes injected during
//!   recording: kidnapped-robot teleports ([`StressEvent::Kidnap`]), per-zone
//!   sensor dropout windows ([`StressEvent::SensorDropout`]) and range-noise
//!   bursts ([`StressEvent::NoiseBurst`]). The injected timeline travels with
//!   the [`Sequence`] so the metrics can score recovery time
//!   after a kidnap and the ATE inside dropout windows.
//!
//! * **Sensing modes** — every spec also names which modalities the filter
//!   consumes ([`SensingMode`]): ToF only, UWB anchor ranges only, or the
//!   fused pipeline. The registry carries two fusion triplets
//!   (`corridor-blind-*`, `hall-dust-*`) in which a mid-flight dust cloud
//!   blinds both ToF sensors and a later NLOS window denies every UWB anchor
//!   — each single-sensor leg flies blind through "its" window and fails,
//!   while the fused leg always has one live modality and succeeds.
//!
//! A [`ScenarioSpec`] names one (world × stress × sensing) combination and
//! builds a regular [`PaperScenario`] from it, so the whole existing
//! evaluation machinery — `evaluate`, `run_batch`, the figure binaries —
//! works on every suite scenario unchanged. [`ScenarioSuite::standard`] registers the named
//! scenarios (the paper world, three-plus generated worlds and the stress
//! variants); [`run_suite`] sweeps the full
//! (scenario × pipeline × particles × backend × seed) grid through
//! [`run_batch`] in one call, deterministically in job order.
//!
//! ```
//! use mcl_core::precision::PipelineConfig;
//! use mcl_core::KernelBackend;
//! use mcl_sim::suite::{run_suite, ScenarioSuite, SuiteScenario};
//!
//! let suite = ScenarioSuite::quick();
//! assert!(suite.len() >= 6);
//! // Build one scenario from the registry and sweep a tiny grid over it.
//! let spec = suite.get("paper-kidnap").unwrap().clone();
//! let scenario = spec.build(1);
//! let scenarios = [SuiteScenario { spec, scenario }];
//! let outcomes = run_suite(
//!     &scenarios,
//!     &[PipelineConfig::FP32],
//!     &[64],
//!     &[KernelBackend::Lanes],
//!     &[1],
//!     2,
//! );
//! assert_eq!(outcomes.len(), 1);
//! assert_eq!(outcomes[0].outcome.result.kidnaps, 1);
//! ```

use crate::batch::{run_batch, BatchJob, BatchOutcome};
use crate::odometry::OdometryConfig;
use crate::runner::{SensingMode, UwbRig};
use crate::scenario::PaperScenario;
use crate::sequence::{Sequence, SequenceConfig, SequenceGenerator};
use crate::trajectory::{Trajectory, TrajectoryConfig, TrajectoryGenerator};
use mcl_core::precision::PipelineConfig;
use mcl_core::KernelBackend;
use mcl_gridmap::{uwb_anchor_positions, DroneMaze, WorldKind};
use mcl_sensor::{model::gaussian, TargetStatus};
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One sequence-level failure mode. Positions are *fractions* of the sequence
/// length in `[0, 1]`, so the same spec scales from quick test sequences to
/// full paper-length flights.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StressEvent {
    /// Teleport the drone to a fresh waypoint at the given fraction of the
    /// sequence (the kidnapped-robot problem): the ground truth jumps, the
    /// recorded odometry reports no motion for that step.
    Kidnap {
        /// Kidnap instant as a fraction of the sequence length.
        at: f32,
    },
    /// Raise the error flag on **every** zone of one mounted sensor for the
    /// whole window — a fully occluded or stalled sensor.
    SensorDropout {
        /// Index of the mounted sensor (0 = front, 1 = rear).
        sensor: usize,
        /// Window start as a fraction of the sequence length.
        from: f32,
        /// Window end (inclusive) as a fraction of the sequence length.
        to: f32,
    },
    /// Add extra Gaussian range noise to every valid zone during the window —
    /// multipath / sunlight interference bursts.
    NoiseBurst {
        /// Window start as a fraction of the sequence length.
        from: f32,
        /// Window end (inclusive) as a fraction of the sequence length.
        to: f32,
        /// Standard deviation of the *additional* noise, metres.
        extra_std_m: f32,
    },
}

/// A named scenario: a world archetype, sequence settings and stress events.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Registry name (stable; used by CI artifacts and the CLI).
    pub name: &'static str,
    /// The world to generate.
    pub world: WorldKind,
    /// Number of flight sequences to record.
    pub num_sequences: usize,
    /// Duration of each sequence, seconds.
    pub duration_s: f32,
    /// Stress events injected into every sequence.
    pub stress: Vec<StressEvent>,
    /// Odometry quality of the recorded sequences. The fusion triplets degrade
    /// it (strong gyro bias) so that flying blind through a stress window
    /// accumulates a success-breaking drift, while any live modality tracks
    /// the bias easily through the filter's process noise.
    pub odometry: OdometryConfig,
    /// Which sensing modalities the filter consumes during replay.
    pub sensing: SensingMode,
    /// Number of UWB anchors installed in the world (0–8, placed by
    /// [`uwb_anchor_positions`]). `MCL_UWB_ANCHORS` overrides this at build
    /// time for UWB-equipped specs.
    pub uwb_anchors: usize,
    /// Optional NLOS denial window `(from, to)` as fractions of the sequence:
    /// every anchor reports NaN inside it (all measurements dropped).
    pub uwb_denied: Option<(f32, f32)>,
}

/// Parses an `MCL_UWB_ANCHORS` override: a usable count or `None` to keep the
/// spec's own value.
fn parse_anchor_override(value: Option<&str>) -> Option<usize> {
    value?.trim().parse().ok()
}

impl ScenarioSpec {
    /// Builds the scenario for `seed`: generates the world, records the
    /// (stressed) sequences and computes the three distance-field precisions.
    /// Fully deterministic in `(self, seed)` — two builds are bit-identical.
    pub fn build(&self, seed: u64) -> PaperScenario {
        let maze = self.world.generate(seed);
        let sequence_config = SequenceConfig {
            trajectory: TrajectoryConfig {
                duration_s: self.duration_s,
                region: Some(maze.physical_region()),
                ..TrajectoryConfig::default()
            },
            odometry: self.odometry,
            ..SequenceConfig::default()
        };
        let (width_m, height_m) = (maze.map().width_m(), maze.map().height_m());
        let generator = SequenceGenerator::new(sequence_config);
        let sequences = (0..self.num_sequences)
            .map(|id| {
                self.build_sequence(&maze, &generator, id, seed.wrapping_add(id as u64 * 101))
            })
            .collect();
        let anchors = if self.sensing.uses_uwb() {
            parse_anchor_override(std::env::var("MCL_UWB_ANCHORS").ok().as_deref())
                .unwrap_or(self.uwb_anchors)
        } else {
            self.uwb_anchors
        };
        let mut rig = UwbRig::from_positions(&uwb_anchor_positions(width_m, height_m, anchors));
        if let Some((from, to)) = self.uwb_denied {
            rig = rig.with_denied_window(from, to);
        }
        PaperScenario::from_parts(maze, sequences, sequence_config).with_sensing(self.sensing, rig)
    }

    /// The kidnap step indices for a sequence of `samples` steps: sorted,
    /// deduplicated, clamped inside `[1, samples - 1]`. A sequence too short
    /// to hold a teleport (fewer than two steps) gets none.
    fn kidnap_steps(&self, samples: usize) -> Vec<usize> {
        if samples < 2 {
            return Vec::new();
        }
        let mut steps: Vec<usize> = self
            .stress
            .iter()
            .filter_map(|event| match event {
                StressEvent::Kidnap { at } => {
                    Some(((at * samples as f32) as usize).clamp(1, samples - 1))
                }
                _ => None,
            })
            .collect();
        steps.sort_unstable();
        steps.dedup();
        steps
    }

    fn build_sequence(
        &self,
        maze: &DroneMaze,
        generator: &SequenceGenerator,
        id: usize,
        seq_seed: u64,
    ) -> Sequence {
        let samples = generator.config().trajectory.sample_count();
        let kidnap_steps = self.kidnap_steps(samples);
        let mut sequence = if kidnap_steps.is_empty() {
            generator.generate(maze.map(), id, seq_seed)
        } else {
            // Mirror `SequenceGenerator::generate`'s RNG keying, then stitch
            // the trajectory from segments: each kidnap restarts the flight at
            // a fresh waypoint drawn from the same start distribution.
            let mut rng =
                rand::rngs::StdRng::seed_from_u64(seq_seed ^ (id as u64).wrapping_mul(0x9E37));
            let trajectories = TrajectoryGenerator::new(generator.config().trajectory);
            let mut poses = Vec::with_capacity(samples);
            let mut begin = 0;
            let mut start = trajectories.random_start(maze.map(), &mut rng);
            for &step in &kidnap_steps {
                let segment = trajectories.generate_from(maze.map(), start, step - begin, &mut rng);
                poses.extend_from_slice(segment.poses());
                begin = step;
                start = trajectories.random_start(maze.map(), &mut rng);
            }
            let tail = trajectories.generate_from(maze.map(), start, samples - begin, &mut rng);
            poses.extend_from_slice(tail.poses());
            let stitched = Trajectory::new(poses, generator.config().trajectory.dt());
            generator.record_with_kidnaps(
                maze.map(),
                &stitched,
                &kidnap_steps,
                id,
                seq_seed,
                &mut rng,
            )
        };
        self.apply_frame_stress(&mut sequence);
        sequence
    }

    /// Applies the frame-level stress events (dropout, noise bursts) to a
    /// recorded sequence and publishes the dropout windows in its timeline.
    fn apply_frame_stress(&self, sequence: &mut Sequence) {
        let samples = sequence.len();
        if samples == 0 {
            return;
        }
        let sensor_config = sequence.config.sensor;
        for (event_index, event) in self.stress.iter().enumerate() {
            match *event {
                StressEvent::Kidnap { .. } => {} // handled during recording
                StressEvent::SensorDropout { sensor, from, to } => {
                    if sensor >= sequence.config.sensor_count {
                        // No such sensor mounted: nothing was dropped, so the
                        // window must not enter the timeline either — it would
                        // make dropout_ate_m score fully healthy sensing.
                        continue;
                    }
                    let (a, b) = window_steps(from, to, samples);
                    for step in &mut sequence.steps[a..=b] {
                        if let Some(frame) = step.frames.get_mut(sensor) {
                            frame.invalidate_all(TargetStatus::Interference);
                        }
                    }
                    sequence
                        .stress
                        .dropout_windows_s
                        .push((sequence.steps[a].timestamp_s, sequence.steps[b].timestamp_s));
                }
                StressEvent::NoiseBurst {
                    from,
                    to,
                    extra_std_m,
                } => {
                    let (a, b) = window_steps(from, to, samples);
                    // One RNG per burst, keyed on the sequence seed and the
                    // event's registry position — deterministic, and
                    // independent of the recording RNG.
                    let mut rng = rand::rngs::StdRng::seed_from_u64(
                        sequence.seed ^ 0xB045_7000 ^ (event_index as u64).wrapping_mul(0x9E37),
                    );
                    for step in &mut sequence.steps[a..=b] {
                        for frame in &mut step.frames {
                            for zone in &mut frame.zones {
                                if !zone.status.is_valid() {
                                    continue;
                                }
                                let noisy = gaussian(&mut rng, zone.distance_m, extra_std_m)
                                    .max(sensor_config.min_range_m);
                                if noisy >= sensor_config.max_range_m {
                                    // The same saturation rule as the sensor
                                    // model: a reading pushed past the range
                                    // limit raises the error flag.
                                    zone.distance_m = sensor_config.max_range_m;
                                    zone.status = TargetStatus::OutOfRange;
                                } else {
                                    zone.distance_m = noisy;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Converts a fractional window to inclusive step bounds inside the sequence.
fn window_steps(from: f32, to: f32, samples: usize) -> (usize, usize) {
    let last = samples - 1;
    let a = ((from * samples as f32) as usize).min(last);
    let b = ((to * samples as f32) as usize).clamp(a, last);
    (a, b)
}

/// The scenario registry.
#[derive(Debug, Clone)]
pub struct ScenarioSuite {
    specs: Vec<ScenarioSpec>,
}

impl ScenarioSuite {
    /// The full suite: every world archetype under nominal conditions plus the
    /// stress variants, at study-scale sequence settings (2 × 45 s).
    pub fn standard() -> Self {
        Self::with_settings(2, 45.0)
    }

    /// The same scenarios scaled down (1 × 10 s sequences) for unit tests and
    /// the CI quick sweep.
    pub fn quick() -> Self {
        Self::with_settings(1, 10.0)
    }

    /// The registry with custom per-scenario sequence settings.
    pub fn with_settings(num_sequences: usize, duration_s: f32) -> Self {
        let spec = |name, world, stress| ScenarioSpec {
            name,
            world,
            num_sequences,
            duration_s,
            stress,
            odometry: OdometryConfig::default(),
            sensing: SensingMode::TofOnly,
            uwb_anchors: 0,
            uwb_denied: None,
        };
        // One fusion leg: the same world, dust cloud (both ToF sensors blinded
        // over `dust`) and UWB NLOS denial window, differing only in which
        // modalities the filter consumes. The dust and denial windows are
        // disjoint, so the fused leg always has at least one live modality
        // while each single-sensor leg flies blind through "its" window.
        let fusion = |name, world, sensing, dust: (f32, f32), denied| ScenarioSpec {
            name,
            world,
            num_sequences,
            duration_s,
            stress: vec![
                StressEvent::SensorDropout {
                    sensor: 0,
                    from: dust.0,
                    to: dust.1,
                },
                StressEvent::SensorDropout {
                    sensor: 1,
                    from: dust.0,
                    to: dust.1,
                },
            ],
            // A strong gyro bias (still well inside the filter's 0.1 rad/step
            // yaw process noise): any live modality corrects it, but a blind
            // window integrates it into >1 m of cross-track drift.
            odometry: OdometryConfig {
                yaw_drift_rad_per_s: 0.12,
                scale_error_std: 0.06,
                ..OdometryConfig::default()
            },
            sensing,
            uwb_anchors: 4,
            uwb_denied: Some(denied),
        };
        // Corridor: dust mid-flight, NLOS denial to the end of the flight.
        let corridor =
            |name, sensing| fusion(name, WorldKind::Corridor, sensing, (0.3, 0.6), (0.65, 1.0));
        // Warehouse: the aliased aisles defeat ToF-only global localization
        // outright; dust mid-flight (UWB holds), NLOS denial to the end (ToF
        // tracks through the racks, all within beam range in 0.8 m aisles).
        let warehouse_nlos =
            |name, sensing| fusion(name, WorldKind::Warehouse, sensing, (0.2, 0.5), (0.6, 1.0));
        ScenarioSuite {
            specs: vec![
                spec("paper", WorldKind::PaperMaze, vec![]),
                spec("office", WorldKind::Office, vec![]),
                spec("corridor-symmetric", WorldKind::Corridor, vec![]),
                spec("open-hall", WorldKind::OpenHall, vec![]),
                spec("warehouse", WorldKind::Warehouse, vec![]),
                spec(
                    "paper-kidnap",
                    WorldKind::PaperMaze,
                    vec![StressEvent::Kidnap { at: 0.5 }],
                ),
                spec(
                    "paper-dropout",
                    WorldKind::PaperMaze,
                    vec![
                        StressEvent::SensorDropout {
                            sensor: 0,
                            from: 0.3,
                            to: 0.5,
                        },
                        StressEvent::SensorDropout {
                            sensor: 1,
                            from: 0.6,
                            to: 0.8,
                        },
                    ],
                ),
                spec(
                    "paper-noise-burst",
                    WorldKind::PaperMaze,
                    vec![StressEvent::NoiseBurst {
                        from: 0.4,
                        to: 0.7,
                        extra_std_m: 0.15,
                    }],
                ),
                corridor("corridor-blind-tof", SensingMode::TofOnly),
                corridor("corridor-blind-uwb", SensingMode::UwbOnly),
                corridor("corridor-blind-fused", SensingMode::Fused),
                warehouse_nlos("warehouse-nlos-tof", SensingMode::TofOnly),
                warehouse_nlos("warehouse-nlos-uwb", SensingMode::UwbOnly),
                warehouse_nlos("warehouse-nlos-fused", SensingMode::Fused),
            ],
        }
    }

    /// The registered scenario specs, in registry order.
    pub fn specs(&self) -> &[ScenarioSpec] {
        &self.specs
    }

    /// The registered scenario names, in registry order.
    pub fn names(&self) -> Vec<&'static str> {
        self.specs.iter().map(|s| s.name).collect()
    }

    /// Looks a scenario up by name.
    pub fn get(&self, name: &str) -> Option<&ScenarioSpec> {
        self.specs.iter().find(|s| s.name == name)
    }

    /// Number of registered scenarios.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True when the registry is empty (never, for the built-in suites).
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Builds every scenario for `seed` (worlds, sequences, distance fields).
    pub fn build_all(&self, seed: u64) -> Vec<SuiteScenario> {
        self.specs
            .iter()
            .map(|spec| SuiteScenario {
                spec: spec.clone(),
                scenario: spec.build(seed),
            })
            .collect()
    }
}

/// One built scenario: the spec it came from and the ready-to-run evaluation
/// environment.
#[derive(Debug, Clone)]
pub struct SuiteScenario {
    /// The spec the scenario was built from.
    pub spec: ScenarioSpec,
    /// The built environment (world, sequences, distance fields).
    pub scenario: PaperScenario,
}

/// One run's outcome, tagged with the scenario it belongs to.
#[derive(Debug, Clone)]
pub struct SuiteOutcome {
    /// Name of the scenario the run belongs to.
    pub scenario: &'static str,
    /// The job and its metrics.
    pub outcome: BatchOutcome,
}

/// Sweeps the full (scenario × pipeline × particles × backend × seed) grid in
/// one call: for every scenario, a [`BatchJob::grid`] is built over all its
/// sequences, replicated per kernel backend and dispatched through
/// [`run_batch`] on `threads` workers. Outcomes are returned grouped by
/// scenario, in job order within each — deterministic and bit-identical for
/// every `threads` value (and, because the kernel backends are bit-identical,
/// between `Scalar` and `Lanes` jobs of the same grid point).
pub fn run_suite(
    scenarios: &[SuiteScenario],
    pipelines: &[PipelineConfig],
    particle_counts: &[usize],
    backends: &[KernelBackend],
    seeds: &[u64],
    threads: usize,
) -> Vec<SuiteOutcome> {
    run_suite_with_mode(
        scenarios,
        pipelines,
        particle_counts,
        backends,
        seeds,
        threads,
        false,
    )
}

/// [`run_suite`] with the adaptive population switch exposed: every job of
/// the grid runs with [`BatchJob::with_adaptive`]`(adaptive)`, so a `true`
/// sweep evaluates the KLD-adaptive filter over exactly the same grid the
/// fixed sweep covers — same worlds, same sequences, same seeds — and the
/// two are directly comparable row by row. `adaptive == false` is identical
/// to [`run_suite`].
#[allow(clippy::too_many_arguments)]
pub fn run_suite_with_mode(
    scenarios: &[SuiteScenario],
    pipelines: &[PipelineConfig],
    particle_counts: &[usize],
    backends: &[KernelBackend],
    seeds: &[u64],
    threads: usize,
    adaptive: bool,
) -> Vec<SuiteOutcome> {
    let mut outcomes = Vec::new();
    for suite_scenario in scenarios {
        let sequence_indices: Vec<usize> = (0..suite_scenario.scenario.sequences().len()).collect();
        let base = BatchJob::grid(&sequence_indices, pipelines, particle_counts, seeds);
        let jobs: Vec<BatchJob> = backends
            .iter()
            .flat_map(|&backend| {
                base.iter()
                    .map(move |job| job.with_kernel_backend(backend).with_adaptive(adaptive))
            })
            .collect();
        for outcome in run_batch(&suite_scenario.scenario, &jobs, threads) {
            outcomes.push(SuiteOutcome {
                scenario: suite_scenario.spec.name,
                outcome,
            });
        }
    }
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec(name: &str) -> ScenarioSpec {
        ScenarioSuite::quick().get(name).unwrap().clone()
    }

    #[test]
    fn registry_has_the_required_breadth() {
        let suite = ScenarioSuite::standard();
        assert!(suite.len() >= 6, "suite too small: {:?}", suite.names());
        // Unique names.
        let mut names = suite.names();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), suite.len());
        // At least three non-paper worlds.
        let generated = suite
            .specs()
            .iter()
            .filter(|s| s.world != WorldKind::PaperMaze)
            .count();
        assert!(generated >= 3);
        // At least two stress variants.
        let stressed = suite
            .specs()
            .iter()
            .filter(|s| !s.stress.is_empty())
            .count();
        assert!(stressed >= 2);
        // Quick mirrors the registry exactly.
        assert_eq!(suite.names(), ScenarioSuite::quick().names());
        assert!(suite.get("no-such-scenario").is_none());
        assert!(!suite.is_empty());
    }

    #[test]
    fn builds_are_bit_identical_per_seed() {
        for name in [
            "office",
            "paper-kidnap",
            "paper-dropout",
            "paper-noise-burst",
        ] {
            let spec = quick_spec(name);
            let a = spec.build(7);
            let b = spec.build(7);
            assert_eq!(a.maze().map(), b.maze().map(), "{name} world diverged");
            assert_eq!(a.sequences(), b.sequences(), "{name} sequences diverged");
            let c = spec.build(8);
            assert_ne!(
                a.sequences(),
                c.sequences(),
                "{name} ignores the scenario seed"
            );
        }
    }

    #[test]
    fn kidnap_scenario_teleports_without_reporting_motion() {
        let spec = quick_spec("paper-kidnap");
        let scenario = spec.build(3);
        let sequence = &scenario.sequences()[0];
        assert_eq!(sequence.stress.kidnap_times_s.len(), 1);
        let samples = sequence.len();
        let kidnap_step = (0.5 * samples as f32) as usize;
        assert!(sequence.steps[kidnap_step].odometry.is_zero());
        assert!(
            (sequence.stress.kidnap_times_s[0] - sequence.steps[kidnap_step].timestamp_s).abs()
                < 1e-9
        );
        // Every step still has the nominal frame count (stress is not truncation).
        assert_eq!(sequence.len(), spec.duration_s as usize * 15);
    }

    #[test]
    fn dropout_scenario_silences_the_right_sensor_in_the_right_window() {
        let spec = quick_spec("paper-dropout");
        let scenario = spec.build(4);
        let sequence = &scenario.sequences()[0];
        let samples = sequence.len();
        assert_eq!(sequence.stress.dropout_windows_s.len(), 2);
        // Front sensor dead inside [0.3, 0.5] of the sequence.
        let (a, b) = super::window_steps(0.3, 0.5, samples);
        for step in &sequence.steps[a..=b] {
            assert_eq!(step.frames[0].valid_zone_count(), 0);
        }
        // Outside every window, the front sensor sees again (statistically
        // certain: only per-zone 2% interference remains).
        let healthy = sequence.steps[..a]
            .iter()
            .map(|s| s.frames[0].valid_zone_count())
            .sum::<usize>();
        assert!(healthy > 0);
        // The rear sensor is untouched in the front sensor's window.
        let rear_valid = sequence.steps[a..=b]
            .iter()
            .map(|s| s.frames[1].valid_zone_count())
            .sum::<usize>();
        assert!(rear_valid > 0);
    }

    #[test]
    fn noise_burst_perturbs_only_the_window() {
        let nominal = quick_spec("paper").build(5);
        let bursty = quick_spec("paper-noise-burst").build(5);
        let a_steps = &nominal.sequences()[0].steps;
        let b_steps = &bursty.sequences()[0].steps;
        assert_eq!(a_steps.len(), b_steps.len());
        let (w0, w1) = super::window_steps(0.4, 0.7, a_steps.len());
        let mut changed = 0;
        for (i, (a, b)) in a_steps.iter().zip(b_steps.iter()).enumerate() {
            assert_eq!(a.ground_truth, b.ground_truth);
            assert_eq!(a.odometry, b.odometry);
            if i < w0 || i > w1 {
                assert_eq!(a.frames, b.frames, "step {i} outside the burst changed");
            } else if a.frames != b.frames {
                changed += 1;
            }
        }
        assert!(changed > 0, "the burst window left every frame untouched");
    }

    #[test]
    fn dropout_on_an_unmounted_sensor_is_ignored() {
        // The deck has two sensors; a window on sensor 5 drops nothing, so it
        // must not enter the timeline either (dropout_ate_m would otherwise
        // score fully healthy sensing).
        let mut spec = quick_spec("paper-dropout");
        spec.stress = vec![StressEvent::SensorDropout {
            sensor: 5,
            from: 0.2,
            to: 0.4,
        }];
        let scenario = spec.build(6);
        let sequence = &scenario.sequences()[0];
        assert!(sequence.stress.dropout_windows_s.is_empty());
        let nominal = quick_spec("paper").build(6);
        assert_eq!(nominal.sequences()[0].steps, sequence.steps);
    }

    #[test]
    fn kidnaps_are_skipped_on_degenerate_sequences() {
        // A sequence too short to hold a teleport builds nominally instead of
        // panicking inside the step clamp.
        let mut spec = quick_spec("paper-kidnap");
        spec.duration_s = 0.05; // one 15 Hz sample
        let scenario = spec.build(2);
        let sequence = &scenario.sequences()[0];
        assert_eq!(sequence.len(), 1);
        assert!(sequence.stress.kidnap_times_s.is_empty());
    }

    #[test]
    fn fusion_triplets_share_the_environment_and_differ_only_in_sensing() {
        for (tof, uwb, fused) in [
            (
                "corridor-blind-tof",
                "corridor-blind-uwb",
                "corridor-blind-fused",
            ),
            (
                "warehouse-nlos-tof",
                "warehouse-nlos-uwb",
                "warehouse-nlos-fused",
            ),
        ] {
            let legs = [quick_spec(tof), quick_spec(uwb), quick_spec(fused)];
            assert_eq!(legs[0].sensing, SensingMode::TofOnly);
            assert_eq!(legs[1].sensing, SensingMode::UwbOnly);
            assert_eq!(legs[2].sensing, SensingMode::Fused);
            let built: Vec<_> = legs.iter().map(|spec| spec.build(3)).collect();
            // All three legs fly through the bit-identical recorded world —
            // only the modalities the filter consumes differ.
            assert_eq!(built[0].sequences(), built[1].sequences(), "{tof}/{uwb}");
            assert_eq!(built[0].sequences(), built[2].sequences(), "{tof}/{fused}");
            for scenario in &built {
                assert_eq!(scenario.uwb_rig().anchor_count(), 4);
                assert!(!scenario.uwb_rig().is_empty());
            }
            // The dust cloud silences both mounted sensors, and the denial
            // window is disjoint from it — the fused leg always has one live
            // modality.
            let dust_windows = &built[0].sequences()[0].stress.dropout_windows_s;
            assert_eq!(dust_windows.len(), 2);
            let (denied_from, denied_to) = legs[0].uwb_denied.unwrap();
            for event in &legs[0].stress {
                if let StressEvent::SensorDropout { from, to, .. } = *event {
                    assert!(
                        denied_to <= from || denied_from >= to,
                        "dust [{from}, {to}] overlaps denial [{denied_from}, {denied_to}]"
                    );
                }
            }
        }
    }

    #[test]
    fn anchor_override_parses_counts_and_rejects_junk() {
        assert_eq!(super::parse_anchor_override(None), None);
        assert_eq!(super::parse_anchor_override(Some("")), None);
        assert_eq!(super::parse_anchor_override(Some("eight")), None);
        assert_eq!(super::parse_anchor_override(Some("-2")), None);
        assert_eq!(super::parse_anchor_override(Some("6")), Some(6));
        assert_eq!(super::parse_anchor_override(Some(" 3 ")), Some(3));
    }

    #[test]
    fn window_steps_clamp_to_the_sequence() {
        assert_eq!(super::window_steps(0.0, 1.0, 100), (0, 99));
        assert_eq!(super::window_steps(0.25, 0.5, 100), (25, 50));
        assert_eq!(super::window_steps(0.9, 0.2, 100), (90, 90));
    }

    #[test]
    fn adaptive_mode_sweeps_the_same_grid_with_adaptive_jobs() {
        let suite = ScenarioSuite::quick();
        let spec = suite.get("paper-kidnap").unwrap().clone();
        let scenarios = [SuiteScenario {
            scenario: spec.build(2),
            spec,
        }];
        let pipelines = [PipelineConfig::FP32];
        let backends = [KernelBackend::Lanes];
        let fixed = run_suite(&scenarios, &pipelines, &[128], &backends, &[1], 2);
        let adaptive =
            run_suite_with_mode(&scenarios, &pipelines, &[128], &backends, &[1], 2, true);
        assert_eq!(fixed.len(), adaptive.len());
        for (f, a) in fixed.iter().zip(adaptive.iter()) {
            assert!(!f.outcome.job.adaptive);
            assert!(a.outcome.job.adaptive);
            assert_eq!(f.outcome.job.with_adaptive(true), a.outcome.job);
        }
    }

    #[test]
    fn run_suite_sweeps_every_axis() {
        let suite = ScenarioSuite::quick();
        let scenarios: Vec<SuiteScenario> = suite
            .specs()
            .iter()
            .take(2)
            .map(|spec| SuiteScenario {
                spec: spec.clone(),
                scenario: spec.build(1),
            })
            .collect();
        let outcomes = run_suite(
            &scenarios,
            &[PipelineConfig::FP32, PipelineConfig::FP16_QM],
            &[64],
            &[KernelBackend::Scalar, KernelBackend::Lanes],
            &[1, 2],
            2,
        );
        // 2 scenarios × 2 pipelines × 1 count × 2 backends × 2 seeds.
        assert_eq!(outcomes.len(), 16);
        assert_eq!(outcomes[0].scenario, scenarios[0].spec.name);
        assert_eq!(outcomes[15].scenario, scenarios[1].spec.name);
        // Scalar and lanes jobs of the same grid point return identical metrics.
        for chunk in outcomes.chunks(8) {
            let (scalar, lanes) = chunk.split_at(4);
            for (s, l) in scalar.iter().zip(lanes.iter()) {
                assert_eq!(
                    s.outcome.job.with_kernel_backend(KernelBackend::Lanes),
                    l.outcome.job
                );
                assert_eq!(s.outcome.result, l.outcome.result);
            }
        }
    }
}
