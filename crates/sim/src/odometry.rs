//! Flow-deck odometry model.
//!
//! The Crazyflie estimates its motion from the Flow-deck v2 (downward optical
//! flow + 1D ToF height) fused by the stock extended Kalman filter. That
//! estimate drifts: optical flow has a small scale error (texture and height
//! dependent), per-step noise, and the yaw — which comes from gyro integration —
//! drifts slowly. The whole point of the paper's MCL is to correct exactly this
//! drift, so the simulated odometry must exhibit it.
//!
//! [`OdometryModel::corrupt`] turns the true body-frame increment of a simulation
//! step into what the Flow-deck would have reported: scaled, noisy and with a
//! slowly drifting yaw.

use mcl_core::MotionDelta;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Noise and drift parameters of the odometry model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OdometryConfig {
    /// Standard deviation of the per-sequence translation scale error
    /// (1.0 = perfect scale). Optical flow typically holds a few percent.
    pub scale_error_std: f32,
    /// Additive translation noise per metre travelled (standard deviation of the
    /// noise on a 1 m leg), metres.
    pub noise_per_m: f32,
    /// Additive translation noise floor per step, metres.
    pub noise_floor_m: f32,
    /// Additive yaw noise per step, radians.
    pub yaw_noise_rad: f32,
    /// Constant yaw drift rate, radians per second (gyro bias).
    pub yaw_drift_rad_per_s: f32,
}

impl Default for OdometryConfig {
    fn default() -> Self {
        OdometryConfig {
            scale_error_std: 0.03,
            noise_per_m: 0.08,
            noise_floor_m: 0.002,
            yaw_noise_rad: 0.004,
            yaw_drift_rad_per_s: 0.015,
        }
    }
}

impl OdometryConfig {
    /// A perfect odometry (useful for isolating other error sources in tests).
    pub fn perfect() -> Self {
        OdometryConfig {
            scale_error_std: 0.0,
            noise_per_m: 0.0,
            noise_floor_m: 0.0,
            yaw_noise_rad: 0.0,
            yaw_drift_rad_per_s: 0.0,
        }
    }
}

/// The per-sequence odometry corruption model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OdometryModel {
    config: OdometryConfig,
    scale: f32,
    yaw_drift_per_step: f32,
}

impl OdometryModel {
    /// Creates a model for one sequence: the scale error and the sign of the yaw
    /// drift are drawn once per sequence (they are biases, not per-step noise).
    pub fn new<R: Rng + ?Sized>(config: OdometryConfig, dt_s: f32, rng: &mut R) -> Self {
        let scale = 1.0
            + if config.scale_error_std > 0.0 {
                gaussian(rng, 0.0, config.scale_error_std)
            } else {
                0.0
            };
        let drift_sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
        OdometryModel {
            config,
            scale,
            yaw_drift_per_step: drift_sign * config.yaw_drift_rad_per_s * dt_s,
        }
    }

    /// The per-sequence scale factor actually drawn.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The configuration.
    pub fn config(&self) -> &OdometryConfig {
        &self.config
    }

    /// Corrupts the true body-frame increment of one step.
    pub fn corrupt<R: Rng + ?Sized>(&self, truth: &MotionDelta, rng: &mut R) -> MotionDelta {
        let travelled = truth.translation();
        let sigma_xy = self.config.noise_floor_m + self.config.noise_per_m * travelled;
        MotionDelta {
            dx: truth.dx * self.scale + gaussian(rng, 0.0, sigma_xy),
            dy: truth.dy * self.scale + gaussian(rng, 0.0, sigma_xy),
            dtheta: truth.dtheta
                + self.yaw_drift_per_step
                + gaussian(rng, 0.0, self.config.yaw_noise_rad),
        }
    }
}

/// Box–Muller Gaussian sample (`std == 0` returns `mean`).
fn gaussian<R: Rng + ?Sized>(rng: &mut R, mean: f32, std: f32) -> f32 {
    mcl_sensor::model::gaussian(rng, mean, std)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcl_gridmap::Pose2;
    use mcl_num::RunningStats;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn perfect_odometry_reports_the_truth() {
        let model = OdometryModel::new(OdometryConfig::perfect(), 1.0 / 15.0, &mut rng(1));
        assert_eq!(model.scale(), 1.0);
        let truth = MotionDelta::new(0.03, 0.01, 0.02);
        let reported = model.corrupt(&truth, &mut rng(2));
        assert_eq!(reported, truth);
    }

    #[test]
    fn scale_error_is_constant_within_a_sequence() {
        let model = OdometryModel::new(OdometryConfig::default(), 1.0 / 15.0, &mut rng(3));
        let s = model.scale();
        assert!((s - 1.0).abs() < 0.15, "scale {s} is implausible");
        // Two different steps see the same scale (it is a bias, not noise).
        let a = model.corrupt(&MotionDelta::new(1.0, 0.0, 0.0), &mut rng(0));
        let b = model.corrupt(&MotionDelta::new(1.0, 0.0, 0.0), &mut rng(0));
        assert_eq!(a, b);
    }

    #[test]
    fn noise_magnitude_scales_with_distance_travelled() {
        let cfg = OdometryConfig {
            scale_error_std: 0.0,
            yaw_drift_rad_per_s: 0.0,
            ..OdometryConfig::default()
        };
        let model = OdometryModel::new(cfg, 1.0 / 15.0, &mut rng(4));
        let mut short = RunningStats::new();
        let mut long = RunningStats::new();
        let mut r = rng(5);
        for _ in 0..3000 {
            short.push(f64::from(
                model.corrupt(&MotionDelta::new(0.01, 0.0, 0.0), &mut r).dx - 0.01,
            ));
            long.push(f64::from(
                model.corrupt(&MotionDelta::new(0.5, 0.0, 0.0), &mut r).dx - 0.5,
            ));
        }
        assert!(long.stddev() > short.stddev() * 3.0);
        assert!(short.mean().abs() < 0.002);
    }

    #[test]
    fn yaw_drift_accumulates_over_a_sequence() {
        let cfg = OdometryConfig {
            scale_error_std: 0.0,
            noise_per_m: 0.0,
            noise_floor_m: 0.0,
            yaw_noise_rad: 0.0,
            yaw_drift_rad_per_s: 0.02,
        };
        let dt = 1.0 / 15.0;
        let model = OdometryModel::new(cfg, dt, &mut rng(6));
        let mut integrated = Pose2::default();
        let truth_step = MotionDelta::new(0.02, 0.0, 0.0);
        let mut r = rng(7);
        for _ in 0..900 {
            let d = model.corrupt(&truth_step, &mut r);
            integrated = integrated.compose(&Pose2::new(d.dx, d.dy, d.dtheta));
        }
        // 60 s at 0.02 rad/s → 1.2 rad of accumulated yaw error (sign depends on
        // the per-sequence draw).
        let yaw_error = mcl_num::angular_difference(integrated.theta, 0.0).abs();
        assert!(
            (yaw_error - 1.2).abs() < 0.05,
            "accumulated drift {yaw_error} rad"
        );
    }

    #[test]
    fn dead_reckoning_with_default_noise_drifts_noticeably() {
        // Integrating the corrupted odometry over a 60 s flight must accumulate a
        // position error that is large compared to the paper's 0.15 m MCL
        // accuracy — otherwise the localization problem would be trivial.
        let dt = 1.0 / 15.0;
        let model = OdometryModel::new(OdometryConfig::default(), dt, &mut rng(8));
        let mut truth = Pose2::default();
        let mut integrated = Pose2::default();
        let mut r = rng(9);
        for i in 0..900 {
            let step = MotionDelta::new(0.03, 0.0, if i % 90 == 0 { 0.3 } else { 0.0 });
            let noisy = model.corrupt(&step, &mut r);
            truth = truth.compose(&Pose2::new(step.dx, step.dy, step.dtheta));
            integrated = integrated.compose(&Pose2::new(noisy.dx, noisy.dy, noisy.dtheta));
        }
        let error = truth.translation_distance(&integrated);
        assert!(error > 0.3, "dead reckoning drifted only {error} m");
    }

    #[test]
    fn model_draw_is_deterministic_in_the_rng() {
        let a = OdometryModel::new(OdometryConfig::default(), 1.0 / 15.0, &mut rng(10));
        let b = OdometryModel::new(OdometryConfig::default(), 1.0 / 15.0, &mut rng(10));
        assert_eq!(a, b);
    }
}
