//! Flight simulation and evaluation for the ToF-MCL reproduction.
//!
//! The paper evaluates on six recorded flight sequences (ToF frames, Flow-deck
//! odometry, Vicon ground truth) flown in a 16 m² physical maze, with the map
//! extended to 31.2 m². Those recordings are not available, so this crate
//! produces statistically equivalent synthetic sequences and the exact metric
//! pipeline the paper reports:
//!
//! * [`trajectory`] — waypoint flights through the free space of the maze at
//!   realistic nano-UAV speeds, sampled at the 15 Hz sensor rate.
//! * [`odometry`] — a Flow-deck-style odometry model with per-step noise, a
//!   per-sequence scale error and a slow yaw drift (the drift MCL must correct).
//! * [`sequence`] — the recorded dataset: ground truth, odometry increments and
//!   ToF frames for every step; generation is deterministic in the seed.
//! * [`metrics`] — convergence detection (0.2 m / 36°), absolute trajectory
//!   error after convergence, success (ATE never exceeds 1 m after convergence)
//!   and time-to-convergence — the quantities plotted in Figs. 6–8.
//! * [`runner`] — drives a filter configuration over a sequence and produces a
//!   [`metrics::SequenceResult`].
//! * [`batch`] — evaluates many (sequence × config × seed) jobs across a host
//!   worker pool, deterministically in job order.
//! * [`scenario`] — the paper's full evaluation scenario: the 31.2 m² maze, six
//!   sequences, six seeds, the four pipeline configurations.
//! * [`suite`] — the scenario suite: a registry of procedurally generated
//!   worlds ([`mcl_gridmap::worldgen`]) and failure-mode sequences (kidnaps,
//!   sensor dropouts, noise bursts), swept in one [`suite::run_suite`] call.
//!
//! # Example
//!
//! ```
//! use mcl_sim::{PaperScenario, SequenceConfig};
//! use mcl_core::precision::PipelineConfig;
//!
//! // A scaled-down scenario: one short sequence, 256 particles.
//! let scenario = PaperScenario::quick(1);
//! let sequence = &scenario.sequences()[0];
//! let result = scenario.evaluate(sequence, PipelineConfig::FP32, 256, 7);
//! assert!(result.steps > 0);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod batch;
pub mod metrics;
pub mod odometry;
pub mod runner;
pub mod scenario;
pub mod sequence;
pub mod suite;
pub mod trajectory;

pub use batch::{aggregate, run_batch, BatchJob, BatchOutcome};
pub use metrics::{
    ConvergenceCriterion, ResultAggregator, SequenceResult, StressTimeline, TrajectoryErrorTracker,
};
pub use odometry::{OdometryConfig, OdometryModel};
pub use runner::{
    run_sequence, sequence_traffic, RunnerConfig, SensingMode, TrafficStep, UwbRig, MAX_UWB_ANCHORS,
};
pub use scenario::PaperScenario;
pub use sequence::{Sequence, SequenceConfig, SequenceGenerator, SequenceStep};
pub use suite::{run_suite, ScenarioSpec, ScenarioSuite, StressEvent, SuiteOutcome, SuiteScenario};
pub use trajectory::{Trajectory, TrajectoryConfig, TrajectoryGenerator};
