//! Driving a filter over a recorded sequence.
//!
//! [`run_sequence`] replays a [`Sequence`] through an
//! initialized filter exactly like the on-board pipeline would see it: the
//! odometry increment of every 15 Hz step is fed to
//! [`MonteCarloLocalization::predict`], the ToF frames are flattened into a
//! [`BeamBatch`] (once per step) and offered to
//! [`MonteCarloLocalization::update_batch`] (which applies its own `d_xy` /
//! `d_θ` gating), and the published estimate is scored against the ground truth
//! by a [`TrajectoryErrorTracker`].

use crate::metrics::{ConvergenceCriterion, SequenceResult, TrajectoryErrorTracker};
use crate::sequence::Sequence;
use mcl_core::{MonteCarloLocalization, MotionDelta};
use mcl_gridmap::DistanceField;
use mcl_num::Scalar;
use mcl_sensor::{Beam, BeamBatch, SensorRig};
use serde::{Deserialize, Serialize};

/// Options of the sequence runner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunnerConfig {
    /// How many of the recorded sensors the filter may use (1 reproduces the
    /// paper's `fp32 1tof` ablation on the same recordings, 2 uses both).
    pub sensor_count: usize,
    /// The convergence / success criterion.
    pub criterion: ConvergenceCriterion,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            sensor_count: 2,
            criterion: ConvergenceCriterion::default(),
        }
    }
}

impl RunnerConfig {
    /// A runner restricted to the forward sensor only.
    pub fn single_sensor() -> Self {
        RunnerConfig {
            sensor_count: 1,
            ..RunnerConfig::default()
        }
    }
}

/// One step of scenario traffic in wire form: the odometry increment and the
/// already-flattened beams a remote drone would push to a fleet server.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficStep {
    /// Body-frame odometry increment since the previous step.
    pub delta: MotionDelta,
    /// The step's beams, reduced exactly like [`run_sequence`] reduces them
    /// (`sensor_count` frame limit, then [`SensorRig::frames_to_beams`]).
    pub beams: Vec<Beam>,
}

/// Flattens `sequence` into per-step wire traffic.
///
/// A filter fed these steps — `predict(delta)` then an update over
/// `BeamBatch::from_beams(&beams)` partitioned at its `r_max` — computes
/// bit-identical results to [`run_sequence`] over the same sequence, because
/// [`mcl_sensor::BeamBatch::from_frames`] is defined as exactly that
/// flattening. This is the traffic source for the fleet load generator and
/// the fleet determinism harness.
pub fn sequence_traffic(sequence: &Sequence, runner: &RunnerConfig) -> Vec<TrafficStep> {
    sequence
        .steps
        .iter()
        .map(|step| {
            let frame_limit = runner.sensor_count.min(step.frames.len());
            TrafficStep {
                delta: step.odometry,
                beams: SensorRig::frames_to_beams(&step.frames[..frame_limit]),
            }
        })
        .collect()
}

/// Replays `sequence` through `filter` and returns the paper's metrics.
///
/// The filter must already be initialized (uniform over the map for global
/// localization, Gaussian for pose tracking).
///
/// # Panics
///
/// Panics if the filter has not been initialized.
pub fn run_sequence<S: Scalar, D: DistanceField>(
    filter: &mut MonteCarloLocalization<S, D>,
    sequence: &Sequence,
    runner: &RunnerConfig,
) -> SequenceResult {
    assert!(
        filter.particles().is_initialized(),
        "initialize the filter before replaying a sequence"
    );
    // The sequence's stress timeline (kidnaps, dropout windows) drives the
    // recovery-time and dropout-ATE metrics; nominal sequences carry an empty
    // timeline and score exactly the paper's three metrics.
    let mut tracker =
        TrajectoryErrorTracker::with_timeline(runner.criterion, sequence.stress.clone());
    for step in &sequence.steps {
        filter.predict(step.odometry);
        let frame_limit = runner.sensor_count.min(step.frames.len());
        let mut batch = BeamBatch::from_frames(&step.frames[..frame_limit]);
        // Hoist the r_max test out of the per-particle correction loop: the
        // partitioned batch takes the branch-free kernel path (bit-identical
        // scores, see `BeamBatch::partition_in_range`).
        batch.partition_in_range(filter.config().r_max);
        let outcome = filter
            .update_batch(&batch)
            .expect("filter was initialized, update cannot fail");
        // An applied update already carries the pose estimate; recomputing it
        // would run the pose-reduction kernel a second time per step.
        let estimate = match outcome.estimate() {
            Some(estimate) => *estimate,
            None => filter.estimate(),
        };
        tracker.record(step.timestamp_s, &estimate, &step.ground_truth);
    }
    let mut result = tracker.finish();
    // The population the filter actually ran: for fixed-size filters this is
    // exactly the configured count, under adaptive control it is the average
    // the KLD adaptation settled on. Counters accumulate over the filter's
    // lifetime, so reusing one filter across replays averages across them.
    let counters = filter.counters();
    result.mean_particles = if counters.updates_applied > 0 {
        counters.resampled_particles as f32 / counters.updates_applied as f32
    } else {
        filter.particles().len() as f32
    };
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::{SequenceConfig, SequenceGenerator};
    use crate::trajectory::TrajectoryConfig;
    use mcl_core::MclConfig;
    use mcl_gridmap::{DroneMaze, EuclideanDistanceField};

    fn scenario() -> (DroneMaze, Sequence) {
        let maze = DroneMaze::paper_layout(17);
        let config = SequenceConfig {
            trajectory: TrajectoryConfig {
                duration_s: 25.0,
                region: Some(maze.physical_region()),
                ..TrajectoryConfig::default()
            },
            ..SequenceConfig::default()
        };
        let sequence = SequenceGenerator::new(config).generate(maze.map(), 0, 3);
        (maze, sequence)
    }

    #[test]
    fn tracking_run_converges_and_reports_low_ate() {
        let (maze, sequence) = scenario();
        let edt = EuclideanDistanceField::compute(maze.map(), 1.5);
        let mut filter = MonteCarloLocalization::<f32, _>::new(
            MclConfig::default().with_particles(1024).with_seed(1),
            edt,
        )
        .unwrap();
        // Pose tracking: start around the true initial pose.
        filter
            .initialize_gaussian(&sequence.steps[0].ground_truth, 0.2, 0.2, 4)
            .unwrap();
        let result = run_sequence(&mut filter, &sequence, &RunnerConfig::default());
        assert_eq!(result.steps, sequence.len());
        assert!(result.converged, "tracking run must converge: {result:?}");
        assert!(
            result.success,
            "tracking run must stay converged: {result:?}"
        );
        assert!(
            result.ate_m.unwrap() < 0.35,
            "ATE too high: {:?}",
            result.ate_m
        );
        // It converged quickly (started at the right pose).
        assert!(result.convergence_time_s.unwrap() < 5.0);
    }

    #[test]
    fn single_sensor_runner_uses_only_the_front_frames() {
        let (maze, sequence) = scenario();
        let edt = EuclideanDistanceField::compute(maze.map(), 1.5);
        let mut filter = MonteCarloLocalization::<f32, _>::new(
            MclConfig::default().with_particles(512).with_seed(2),
            edt,
        )
        .unwrap();
        filter
            .initialize_gaussian(&sequence.steps[0].ground_truth, 0.2, 0.2, 5)
            .unwrap();
        let result = run_sequence(&mut filter, &sequence, &RunnerConfig::single_sensor());
        // The run completes and scores every step; accuracy assertions live in
        // the experiment harness where statistics over seeds are available.
        assert_eq!(result.steps, sequence.len());
    }

    #[test]
    fn traffic_replay_is_bit_identical_to_run_sequence() {
        let (maze, sequence) = scenario();
        let config = MclConfig::default().with_particles(256).with_seed(9);
        let runner = RunnerConfig::single_sensor();

        let edt = EuclideanDistanceField::compute(maze.map(), 1.5);
        let mut reference = MonteCarloLocalization::<f32, _>::new(config, edt).unwrap();
        reference.initialize_uniform(maze.map(), 11).unwrap();
        let mut expected = Vec::new();
        for step in &sequence.steps {
            reference.predict(step.odometry);
            let frame_limit = runner.sensor_count.min(step.frames.len());
            let mut batch = BeamBatch::from_frames(&step.frames[..frame_limit]);
            batch.partition_in_range(reference.config().r_max);
            let outcome = reference.update_batch(&batch).unwrap();
            expected.push(match outcome.estimate() {
                Some(estimate) => *estimate,
                None => reference.estimate(),
            });
        }

        let edt = EuclideanDistanceField::compute(maze.map(), 1.5);
        let mut replica = MonteCarloLocalization::<f32, _>::new(config, edt).unwrap();
        replica.initialize_uniform(maze.map(), 11).unwrap();
        let traffic = sequence_traffic(&sequence, &runner);
        assert_eq!(traffic.len(), sequence.len());
        for (step, expect) in traffic.iter().zip(&expected) {
            replica.predict(step.delta);
            let mut batch = BeamBatch::from_beams(&step.beams);
            batch.partition_in_range(replica.config().r_max);
            let outcome = replica.update_batch(&batch).unwrap();
            let estimate = match outcome.estimate() {
                Some(estimate) => *estimate,
                None => replica.estimate(),
            };
            assert_eq!(estimate.pose.x.to_bits(), expect.pose.x.to_bits());
            assert_eq!(estimate.pose.y.to_bits(), expect.pose.y.to_bits());
            assert_eq!(estimate.pose.theta.to_bits(), expect.pose.theta.to_bits());
            assert_eq!(estimate.neff.to_bits(), expect.neff.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "initialize the filter")]
    fn uninitialized_filter_is_rejected() {
        let (maze, sequence) = scenario();
        let edt = EuclideanDistanceField::compute(maze.map(), 1.5);
        let mut filter =
            MonteCarloLocalization::<f32, _>::new(MclConfig::default().with_particles(64), edt)
                .unwrap();
        let _ = run_sequence(&mut filter, &sequence, &RunnerConfig::default());
    }
}
