//! Driving a filter over a recorded sequence.
//!
//! [`run_sequence`] replays a [`Sequence`] through an
//! initialized filter exactly like the on-board pipeline would see it: the
//! odometry increment of every 15 Hz step is fed to
//! [`MonteCarloLocalization::predict`], the ToF frames are flattened into a
//! [`BeamBatch`] (once per step) and offered to
//! [`MonteCarloLocalization::update_batch`] (which applies its own `d_xy` /
//! `d_θ` gating), and the published estimate is scored against the ground truth
//! by a [`TrajectoryErrorTracker`].

use crate::metrics::{ConvergenceCriterion, SequenceResult, TrajectoryErrorTracker};
use crate::sequence::Sequence;
use mcl_core::MonteCarloLocalization;
use mcl_gridmap::DistanceField;
use mcl_num::Scalar;
use mcl_sensor::BeamBatch;
use serde::{Deserialize, Serialize};

/// Options of the sequence runner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunnerConfig {
    /// How many of the recorded sensors the filter may use (1 reproduces the
    /// paper's `fp32 1tof` ablation on the same recordings, 2 uses both).
    pub sensor_count: usize,
    /// The convergence / success criterion.
    pub criterion: ConvergenceCriterion,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            sensor_count: 2,
            criterion: ConvergenceCriterion::default(),
        }
    }
}

impl RunnerConfig {
    /// A runner restricted to the forward sensor only.
    pub fn single_sensor() -> Self {
        RunnerConfig {
            sensor_count: 1,
            ..RunnerConfig::default()
        }
    }
}

/// Replays `sequence` through `filter` and returns the paper's metrics.
///
/// The filter must already be initialized (uniform over the map for global
/// localization, Gaussian for pose tracking).
///
/// # Panics
///
/// Panics if the filter has not been initialized.
pub fn run_sequence<S: Scalar, D: DistanceField>(
    filter: &mut MonteCarloLocalization<S, D>,
    sequence: &Sequence,
    runner: &RunnerConfig,
) -> SequenceResult {
    assert!(
        filter.particles().is_initialized(),
        "initialize the filter before replaying a sequence"
    );
    // The sequence's stress timeline (kidnaps, dropout windows) drives the
    // recovery-time and dropout-ATE metrics; nominal sequences carry an empty
    // timeline and score exactly the paper's three metrics.
    let mut tracker =
        TrajectoryErrorTracker::with_timeline(runner.criterion, sequence.stress.clone());
    for step in &sequence.steps {
        filter.predict(step.odometry);
        let frame_limit = runner.sensor_count.min(step.frames.len());
        let mut batch = BeamBatch::from_frames(&step.frames[..frame_limit]);
        // Hoist the r_max test out of the per-particle correction loop: the
        // partitioned batch takes the branch-free kernel path (bit-identical
        // scores, see `BeamBatch::partition_in_range`).
        batch.partition_in_range(filter.config().r_max);
        let outcome = filter
            .update_batch(&batch)
            .expect("filter was initialized, update cannot fail");
        // An applied update already carries the pose estimate; recomputing it
        // would run the pose-reduction kernel a second time per step.
        let estimate = match outcome.estimate() {
            Some(estimate) => *estimate,
            None => filter.estimate(),
        };
        tracker.record(step.timestamp_s, &estimate, &step.ground_truth);
    }
    let mut result = tracker.finish();
    // The population the filter actually ran: for fixed-size filters this is
    // exactly the configured count, under adaptive control it is the average
    // the KLD adaptation settled on. Counters accumulate over the filter's
    // lifetime, so reusing one filter across replays averages across them.
    let counters = filter.counters();
    result.mean_particles = if counters.updates_applied > 0 {
        counters.resampled_particles as f32 / counters.updates_applied as f32
    } else {
        filter.particles().len() as f32
    };
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::{SequenceConfig, SequenceGenerator};
    use crate::trajectory::TrajectoryConfig;
    use mcl_core::MclConfig;
    use mcl_gridmap::{DroneMaze, EuclideanDistanceField};

    fn scenario() -> (DroneMaze, Sequence) {
        let maze = DroneMaze::paper_layout(17);
        let config = SequenceConfig {
            trajectory: TrajectoryConfig {
                duration_s: 25.0,
                region: Some(maze.physical_region()),
                ..TrajectoryConfig::default()
            },
            ..SequenceConfig::default()
        };
        let sequence = SequenceGenerator::new(config).generate(maze.map(), 0, 3);
        (maze, sequence)
    }

    #[test]
    fn tracking_run_converges_and_reports_low_ate() {
        let (maze, sequence) = scenario();
        let edt = EuclideanDistanceField::compute(maze.map(), 1.5);
        let mut filter = MonteCarloLocalization::<f32, _>::new(
            MclConfig::default().with_particles(1024).with_seed(1),
            edt,
        )
        .unwrap();
        // Pose tracking: start around the true initial pose.
        filter
            .initialize_gaussian(&sequence.steps[0].ground_truth, 0.2, 0.2, 4)
            .unwrap();
        let result = run_sequence(&mut filter, &sequence, &RunnerConfig::default());
        assert_eq!(result.steps, sequence.len());
        assert!(result.converged, "tracking run must converge: {result:?}");
        assert!(
            result.success,
            "tracking run must stay converged: {result:?}"
        );
        assert!(
            result.ate_m.unwrap() < 0.35,
            "ATE too high: {:?}",
            result.ate_m
        );
        // It converged quickly (started at the right pose).
        assert!(result.convergence_time_s.unwrap() < 5.0);
    }

    #[test]
    fn single_sensor_runner_uses_only_the_front_frames() {
        let (maze, sequence) = scenario();
        let edt = EuclideanDistanceField::compute(maze.map(), 1.5);
        let mut filter = MonteCarloLocalization::<f32, _>::new(
            MclConfig::default().with_particles(512).with_seed(2),
            edt,
        )
        .unwrap();
        filter
            .initialize_gaussian(&sequence.steps[0].ground_truth, 0.2, 0.2, 5)
            .unwrap();
        let result = run_sequence(&mut filter, &sequence, &RunnerConfig::single_sensor());
        // The run completes and scores every step; accuracy assertions live in
        // the experiment harness where statistics over seeds are available.
        assert_eq!(result.steps, sequence.len());
    }

    #[test]
    #[should_panic(expected = "initialize the filter")]
    fn uninitialized_filter_is_rejected() {
        let (maze, sequence) = scenario();
        let edt = EuclideanDistanceField::compute(maze.map(), 1.5);
        let mut filter =
            MonteCarloLocalization::<f32, _>::new(MclConfig::default().with_particles(64), edt)
                .unwrap();
        let _ = run_sequence(&mut filter, &sequence, &RunnerConfig::default());
    }
}
