//! Driving a filter over a recorded sequence.
//!
//! [`run_sequence`] replays a [`Sequence`] through an
//! initialized filter exactly like the on-board pipeline would see it: the
//! odometry increment of every 15 Hz step is fed to
//! [`MonteCarloLocalization::predict`], the ToF frames are flattened into a
//! [`BeamBatch`] (once per step), wrapped into an [`ObservationBatch`] —
//! together with synthesized UWB anchor ranges when the runner's
//! [`SensingMode`] asks for them — and offered to
//! [`MonteCarloLocalization::update_observations`] (which applies its own
//! `d_xy` / `d_θ` gating), and the published estimate is scored against the
//! ground truth by a [`TrajectoryErrorTracker`].
//!
//! UWB ranges are synthesized at replay time from the step's ground truth and
//! the runner's [`UwbRig`]: recorded sequences stay pure ToF recordings, and
//! the same sequence can be replayed ToF-only, UWB-only or fused. The
//! synthesis RNG is keyed on `(rig seed, sequence seed)`, so replays are
//! deterministic and independent of the filter's worker count or backend.

use crate::metrics::{ConvergenceCriterion, SequenceResult, TrajectoryErrorTracker};
use crate::sequence::Sequence;
use mcl_core::{MonteCarloLocalization, MotionDelta};
use mcl_gridmap::DistanceField;
use mcl_num::Scalar;
use mcl_sensor::{model::gaussian, AnchorRange, Beam, BeamBatch, ObservationBatch, SensorRig};
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Which sensor modalities the runner feeds the filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SensingMode {
    /// ToF beams only — the paper's configuration and the default; byte-for-
    /// byte the pre-fusion replay.
    #[default]
    TofOnly,
    /// UWB anchor ranges only — infrastructure localization with no
    /// on-board perception. Ranges carry no heading information, so the
    /// convergence criterion's yaw gate makes this mode structurally weak on
    /// its own.
    UwbOnly,
    /// ToF beams and UWB anchor ranges fused in one [`ObservationBatch`].
    Fused,
}

impl SensingMode {
    /// True when the mode feeds ToF beams to the filter.
    pub fn uses_tof(self) -> bool {
        self != SensingMode::UwbOnly
    }

    /// True when the mode feeds UWB anchor ranges to the filter.
    pub fn uses_uwb(self) -> bool {
        self != SensingMode::TofOnly
    }
}

/// Maximum number of UWB anchors a [`UwbRig`] can carry (fixed capacity keeps
/// [`RunnerConfig`] `Copy`).
pub const MAX_UWB_ANCHORS: usize = 8;

/// The UWB infrastructure a replay ranges against: anchor positions, the
/// synthesized measurement noise, and an optional NLOS denial window during
/// which every anchor reports a non-finite range (a fully UWB-denied stretch
/// of the flight — the measurements exist on the wire but carry no
/// information, exercising the filter's non-finite skip rule end to end).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UwbRig {
    /// Anchor positions `(x, y)` in the map frame; only the first
    /// [`UwbRig::anchor_count`] entries are live.
    anchors: [[f32; 2]; MAX_UWB_ANCHORS],
    count: usize,
    /// Standard deviation of the synthesized range noise, metres (defaults to
    /// the UWB trilateration baseline's 0.15 m).
    pub range_noise_std_m: f32,
    /// Seed of the range-noise stream (combined with the sequence seed).
    pub seed: u64,
    /// Start of the NLOS denial window as a fraction of the sequence length.
    pub denied_from: f32,
    /// End (exclusive) of the NLOS denial window as a fraction of the
    /// sequence length. A window with `denied_to <= denied_from` (the
    /// default) never denies anything.
    pub denied_to: f32,
}

impl Default for UwbRig {
    fn default() -> Self {
        UwbRig {
            anchors: [[0.0; 2]; MAX_UWB_ANCHORS],
            count: 0,
            range_noise_std_m: 0.15,
            seed: 0x0b5e,
            denied_from: 0.0,
            denied_to: 0.0,
        }
    }
}

impl UwbRig {
    /// A rig ranging against `positions` (at most [`MAX_UWB_ANCHORS`]; the
    /// surplus is ignored) with the default noise model.
    pub fn from_positions(positions: &[(f32, f32)]) -> Self {
        let mut rig = UwbRig::default();
        for &(x, y) in positions.iter().take(MAX_UWB_ANCHORS) {
            rig.anchors[rig.count] = [x, y];
            rig.count += 1;
        }
        rig
    }

    /// Returns a copy with the NLOS denial window set (fractions of the
    /// sequence length).
    pub fn with_denied_window(mut self, from: f32, to: f32) -> Self {
        self.denied_from = from;
        self.denied_to = to;
        self
    }

    /// The live anchor positions.
    pub fn anchor_positions(&self) -> &[[f32; 2]] {
        &self.anchors[..self.count]
    }

    /// Number of live anchors.
    pub fn anchor_count(&self) -> usize {
        self.count
    }

    /// True when the rig has no anchors (UWB sensing is then inert even in
    /// [`SensingMode::UwbOnly`]).
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// True when `fraction` of the sequence falls inside the denial window.
    pub fn denied_at(&self, fraction: f32) -> bool {
        self.denied_from < self.denied_to
            && fraction >= self.denied_from
            && fraction < self.denied_to
    }
}

/// Options of the sequence runner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunnerConfig {
    /// How many of the recorded sensors the filter may use (1 reproduces the
    /// paper's `fp32 1tof` ablation on the same recordings, 2 uses both).
    pub sensor_count: usize,
    /// The convergence / success criterion.
    pub criterion: ConvergenceCriterion,
    /// Which sensor modalities the replay feeds the filter.
    pub sensing: SensingMode,
    /// The UWB infrastructure, consulted only when
    /// [`RunnerConfig::sensing`]`.uses_uwb()`.
    pub uwb: UwbRig,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            sensor_count: 2,
            criterion: ConvergenceCriterion::default(),
            sensing: SensingMode::default(),
            uwb: UwbRig::default(),
        }
    }
}

impl RunnerConfig {
    /// A runner restricted to the forward sensor only.
    pub fn single_sensor() -> Self {
        RunnerConfig {
            sensor_count: 1,
            ..RunnerConfig::default()
        }
    }

    /// Returns a copy replaying under `sensing` against `rig`.
    pub fn with_uwb(mut self, sensing: SensingMode, rig: UwbRig) -> Self {
        self.sensing = sensing;
        self.uwb = rig;
        self
    }
}

/// One step of scenario traffic in wire form: the odometry increment and the
/// already-flattened beams a remote drone would push to a fleet server.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficStep {
    /// Body-frame odometry increment since the previous step.
    pub delta: MotionDelta,
    /// The step's beams, reduced exactly like [`run_sequence`] reduces them
    /// (`sensor_count` frame limit, then [`SensorRig::frames_to_beams`]).
    pub beams: Vec<Beam>,
}

/// Flattens `sequence` into per-step wire traffic.
///
/// A filter fed these steps — `predict(delta)` then an update over
/// `BeamBatch::from_beams(&beams)` partitioned at its `r_max` — computes
/// bit-identical results to [`run_sequence`] over the same sequence, because
/// [`mcl_sensor::BeamBatch::from_frames`] is defined as exactly that
/// flattening. This is the traffic source for the fleet load generator and
/// the fleet determinism harness.
pub fn sequence_traffic(sequence: &Sequence, runner: &RunnerConfig) -> Vec<TrafficStep> {
    sequence
        .steps
        .iter()
        .map(|step| {
            let frame_limit = runner.sensor_count.min(step.frames.len());
            TrafficStep {
                delta: step.odometry,
                beams: SensorRig::frames_to_beams(&step.frames[..frame_limit]),
            }
        })
        .collect()
}

/// Replays `sequence` through `filter` and returns the paper's metrics.
///
/// The filter must already be initialized (uniform over the map for global
/// localization, Gaussian for pose tracking).
///
/// # Panics
///
/// Panics if the filter has not been initialized.
pub fn run_sequence<S: Scalar, D: DistanceField>(
    filter: &mut MonteCarloLocalization<S, D>,
    sequence: &Sequence,
    runner: &RunnerConfig,
) -> SequenceResult {
    assert!(
        filter.particles().is_initialized(),
        "initialize the filter before replaying a sequence"
    );
    // The sequence's stress timeline (kidnaps, dropout windows) drives the
    // recovery-time and dropout-ATE metrics; nominal sequences carry an empty
    // timeline and score exactly the paper's three metrics.
    let mut tracker =
        TrajectoryErrorTracker::with_timeline(runner.criterion, sequence.stress.clone());
    let use_uwb = runner.sensing.uses_uwb() && !runner.uwb.is_empty();
    // One noise stream per replay, keyed on the rig and the sequence — the
    // draws happen outside the filter, so the synthesized ranges (and with
    // them the whole replay) are bit-identical for every worker count and
    // kernel backend.
    let mut uwb_rng = rand::rngs::StdRng::seed_from_u64(
        runner.uwb.seed ^ sequence.seed.rotate_left(17) ^ 0x05B5_EED0,
    );
    let samples = sequence.steps.len().max(1);
    for (index, step) in sequence.steps.iter().enumerate() {
        filter.predict(step.odometry);
        let mut observations = if runner.sensing.uses_tof() {
            let frame_limit = runner.sensor_count.min(step.frames.len());
            let mut batch = BeamBatch::from_frames(&step.frames[..frame_limit]);
            // Hoist the r_max test out of the per-particle correction loop:
            // the partitioned batch takes the branch-free kernel path
            // (bit-identical scores, see `BeamBatch::partition_in_range`).
            batch.partition_in_range(filter.config().r_max);
            ObservationBatch::from_beam_batch(batch)
        } else {
            ObservationBatch::new()
        };
        if use_uwb {
            // Denied (NLOS) stretches still deliver a measurement per anchor,
            // just a useless one — the non-finite skip rule in the kernel
            // (and the UWB baseline's solver) is what keeps them harmless.
            let denied = runner.uwb.denied_at(index as f32 / samples as f32);
            for &[ax, ay] in runner.uwb.anchor_positions() {
                let range = if denied {
                    f32::NAN
                } else {
                    let dx = step.ground_truth.x - ax;
                    let dy = step.ground_truth.y - ay;
                    let true_range = (dx * dx + dy * dy).sqrt();
                    true_range + gaussian(&mut uwb_rng, 0.0, runner.uwb.range_noise_std_m)
                };
                observations.push_anchor(AnchorRange::new(ax, ay, range));
            }
        }
        let outcome = filter
            .update_observations(&observations)
            .expect("filter was initialized, update cannot fail");
        // An applied update already carries the pose estimate; recomputing it
        // would run the pose-reduction kernel a second time per step.
        let estimate = match outcome.estimate() {
            Some(estimate) => *estimate,
            None => filter.estimate(),
        };
        tracker.record(step.timestamp_s, &estimate, &step.ground_truth);
    }
    let mut result = tracker.finish();
    // The population the filter actually ran: for fixed-size filters this is
    // exactly the configured count, under adaptive control it is the average
    // the KLD adaptation settled on. Counters accumulate over the filter's
    // lifetime, so reusing one filter across replays averages across them.
    let counters = filter.counters();
    result.mean_particles = if counters.updates_applied > 0 {
        counters.resampled_particles as f32 / counters.updates_applied as f32
    } else {
        filter.particles().len() as f32
    };
    result
}

#[cfg(test)]
mod tests {
    // `traffic_replay_is_bit_identical_to_run_sequence` deliberately replays
    // through the deprecated beam-only shim to pin its equivalence.
    #![allow(deprecated)]

    use super::*;
    use crate::sequence::{SequenceConfig, SequenceGenerator};
    use crate::trajectory::TrajectoryConfig;
    use mcl_core::MclConfig;
    use mcl_gridmap::{uwb_anchor_positions, DroneMaze, EuclideanDistanceField};

    fn scenario() -> (DroneMaze, Sequence) {
        let maze = DroneMaze::paper_layout(17);
        let config = SequenceConfig {
            trajectory: TrajectoryConfig {
                duration_s: 25.0,
                region: Some(maze.physical_region()),
                ..TrajectoryConfig::default()
            },
            ..SequenceConfig::default()
        };
        let sequence = SequenceGenerator::new(config).generate(maze.map(), 0, 3);
        (maze, sequence)
    }

    #[test]
    fn tracking_run_converges_and_reports_low_ate() {
        let (maze, sequence) = scenario();
        let edt = EuclideanDistanceField::compute(maze.map(), 1.5);
        let mut filter = MonteCarloLocalization::<f32, _>::new(
            MclConfig::default().with_particles(1024).with_seed(1),
            edt,
        )
        .unwrap();
        // Pose tracking: start around the true initial pose.
        filter
            .initialize_gaussian(&sequence.steps[0].ground_truth, 0.2, 0.2, 4)
            .unwrap();
        let result = run_sequence(&mut filter, &sequence, &RunnerConfig::default());
        assert_eq!(result.steps, sequence.len());
        assert!(result.converged, "tracking run must converge: {result:?}");
        assert!(
            result.success,
            "tracking run must stay converged: {result:?}"
        );
        assert!(
            result.ate_m.unwrap() < 0.35,
            "ATE too high: {:?}",
            result.ate_m
        );
        // It converged quickly (started at the right pose).
        assert!(result.convergence_time_s.unwrap() < 5.0);
    }

    #[test]
    fn single_sensor_runner_uses_only_the_front_frames() {
        let (maze, sequence) = scenario();
        let edt = EuclideanDistanceField::compute(maze.map(), 1.5);
        let mut filter = MonteCarloLocalization::<f32, _>::new(
            MclConfig::default().with_particles(512).with_seed(2),
            edt,
        )
        .unwrap();
        filter
            .initialize_gaussian(&sequence.steps[0].ground_truth, 0.2, 0.2, 5)
            .unwrap();
        let result = run_sequence(&mut filter, &sequence, &RunnerConfig::single_sensor());
        // The run completes and scores every step; accuracy assertions live in
        // the experiment harness where statistics over seeds are available.
        assert_eq!(result.steps, sequence.len());
    }

    #[test]
    fn traffic_replay_is_bit_identical_to_run_sequence() {
        let (maze, sequence) = scenario();
        let config = MclConfig::default().with_particles(256).with_seed(9);
        let runner = RunnerConfig::single_sensor();

        let edt = EuclideanDistanceField::compute(maze.map(), 1.5);
        let mut reference = MonteCarloLocalization::<f32, _>::new(config, edt).unwrap();
        reference.initialize_uniform(maze.map(), 11).unwrap();
        let mut expected = Vec::new();
        for step in &sequence.steps {
            reference.predict(step.odometry);
            let frame_limit = runner.sensor_count.min(step.frames.len());
            let mut batch = BeamBatch::from_frames(&step.frames[..frame_limit]);
            batch.partition_in_range(reference.config().r_max);
            let outcome = reference.update_batch(&batch).unwrap();
            expected.push(match outcome.estimate() {
                Some(estimate) => *estimate,
                None => reference.estimate(),
            });
        }

        let edt = EuclideanDistanceField::compute(maze.map(), 1.5);
        let mut replica = MonteCarloLocalization::<f32, _>::new(config, edt).unwrap();
        replica.initialize_uniform(maze.map(), 11).unwrap();
        let traffic = sequence_traffic(&sequence, &runner);
        assert_eq!(traffic.len(), sequence.len());
        for (step, expect) in traffic.iter().zip(&expected) {
            replica.predict(step.delta);
            let mut batch = BeamBatch::from_beams(&step.beams);
            batch.partition_in_range(replica.config().r_max);
            let outcome = replica.update_batch(&batch).unwrap();
            let estimate = match outcome.estimate() {
                Some(estimate) => *estimate,
                None => replica.estimate(),
            };
            assert_eq!(estimate.pose.x.to_bits(), expect.pose.x.to_bits());
            assert_eq!(estimate.pose.y.to_bits(), expect.pose.y.to_bits());
            assert_eq!(estimate.pose.theta.to_bits(), expect.pose.theta.to_bits());
            assert_eq!(estimate.neff.to_bits(), expect.neff.to_bits());
        }
    }

    #[test]
    fn uwb_rig_capacity_denial_window_and_mode_predicates() {
        let rig = UwbRig::from_positions(&[(0.0, 0.0); 12]);
        assert_eq!(rig.anchor_count(), MAX_UWB_ANCHORS);
        assert!(UwbRig::default().is_empty());
        let rig = UwbRig::from_positions(&[(1.0, 2.0)]).with_denied_window(0.25, 0.5);
        assert_eq!(rig.anchor_positions(), &[[1.0, 2.0]]);
        assert!(!rig.denied_at(0.24) && rig.denied_at(0.25));
        assert!(rig.denied_at(0.49) && !rig.denied_at(0.5));
        assert!(!UwbRig::default().denied_at(0.0), "empty window denies");
        assert!(SensingMode::TofOnly.uses_tof() && !SensingMode::TofOnly.uses_uwb());
        assert!(!SensingMode::UwbOnly.uses_tof() && SensingMode::UwbOnly.uses_uwb());
        assert!(SensingMode::Fused.uses_tof() && SensingMode::Fused.uses_uwb());
        assert_eq!(SensingMode::default(), SensingMode::TofOnly);
    }

    #[test]
    fn tof_only_replay_is_bit_identical_to_the_pre_fusion_path() {
        // The default (ToF-only) runner must replay the exact floating-point
        // sequence the pre-redesign runner produced — pinned here against an
        // inline replica of the old update_batch loop.
        let (maze, sequence) = scenario();
        let config = MclConfig::default().with_particles(256).with_seed(9);
        let runner = RunnerConfig::default();

        let edt = EuclideanDistanceField::compute(maze.map(), 1.5);
        let mut old_style = MonteCarloLocalization::<f32, _>::new(config, edt).unwrap();
        old_style.initialize_uniform(maze.map(), 11).unwrap();
        let mut expected = Vec::new();
        for step in &sequence.steps {
            old_style.predict(step.odometry);
            let frame_limit = runner.sensor_count.min(step.frames.len());
            let mut batch = BeamBatch::from_frames(&step.frames[..frame_limit]);
            batch.partition_in_range(old_style.config().r_max);
            let outcome = old_style.update_batch(&batch).unwrap();
            expected.push(match outcome.estimate() {
                Some(estimate) => *estimate,
                None => old_style.estimate(),
            });
        }

        let edt = EuclideanDistanceField::compute(maze.map(), 1.5);
        let mut new_style = MonteCarloLocalization::<f32, _>::new(config, edt).unwrap();
        new_style.initialize_uniform(maze.map(), 11).unwrap();
        let mut tracker_feed = Vec::new();
        for step in &sequence.steps {
            new_style.predict(step.odometry);
            let frame_limit = runner.sensor_count.min(step.frames.len());
            let mut batch = BeamBatch::from_frames(&step.frames[..frame_limit]);
            batch.partition_in_range(new_style.config().r_max);
            let outcome = new_style
                .update_observations(&ObservationBatch::from_beam_batch(batch))
                .unwrap();
            tracker_feed.push(match outcome.estimate() {
                Some(estimate) => *estimate,
                None => new_style.estimate(),
            });
        }
        for (a, b) in tracker_feed.iter().zip(&expected) {
            assert_eq!(a.pose.x.to_bits(), b.pose.x.to_bits());
            assert_eq!(a.pose.y.to_bits(), b.pose.y.to_bits());
            assert_eq!(a.pose.theta.to_bits(), b.pose.theta.to_bits());
        }
    }

    #[test]
    fn fused_replay_is_deterministic_and_scores_every_step() {
        let (maze, sequence) = scenario();
        let rig = UwbRig::from_positions(&uwb_anchor_positions(
            maze.map().width_m(),
            maze.map().height_m(),
            4,
        ));
        let runner = RunnerConfig::default().with_uwb(SensingMode::Fused, rig);
        let run = |seed: u64| {
            let edt = EuclideanDistanceField::compute(maze.map(), 1.5);
            let mut filter = MonteCarloLocalization::<f32, _>::new(
                MclConfig::default().with_particles(256).with_seed(seed),
                edt,
            )
            .unwrap();
            filter.initialize_uniform(maze.map(), 11).unwrap();
            run_sequence(&mut filter, &sequence, &runner)
        };
        let a = run(3);
        let b = run(3);
        assert_eq!(a, b, "fused replay is not deterministic");
        assert_eq!(a.steps, sequence.len());
    }

    #[test]
    fn uwb_only_replay_runs_without_any_tof_frames() {
        let (maze, sequence) = scenario();
        let rig = UwbRig::from_positions(&uwb_anchor_positions(
            maze.map().width_m(),
            maze.map().height_m(),
            4,
        ));
        let runner = RunnerConfig::default().with_uwb(SensingMode::UwbOnly, rig);
        let edt = EuclideanDistanceField::compute(maze.map(), 1.5);
        let mut filter = MonteCarloLocalization::<f32, _>::new(
            MclConfig::default().with_particles(512).with_seed(5),
            edt,
        )
        .unwrap();
        filter.initialize_uniform(maze.map(), 6).unwrap();
        let result = run_sequence(&mut filter, &sequence, &runner);
        assert_eq!(result.steps, sequence.len());
        assert!(filter.counters().updates_applied > 0);
    }

    #[test]
    #[should_panic(expected = "initialize the filter")]
    fn uninitialized_filter_is_rejected() {
        let (maze, sequence) = scenario();
        let edt = EuclideanDistanceField::compute(maze.map(), 1.5);
        let mut filter =
            MonteCarloLocalization::<f32, _>::new(MclConfig::default().with_particles(64), edt)
                .unwrap();
        let _ = run_sequence(&mut filter, &sequence, &RunnerConfig::default());
    }
}
