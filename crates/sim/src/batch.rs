//! Batched multi-run evaluation: many (sequence × config × seed) jobs across a
//! host worker pool.
//!
//! One filter update is data-parallel over particles; a *study* — the paper's
//! Figs. 6–8 sweep sequences, pipeline configurations, particle counts and
//! seeds — is embarrassingly parallel over runs. [`run_batch`] evaluates a
//! list of [`BatchJob`]s as one **first-class dispatch** on the shared
//! work-stealing worker pool ([`mcl_core::pool::shared`], capped at `threads`
//! concurrent workers) and returns the results **in job order**, so the
//! output is deterministic and independent of the thread count: each job's
//! filter owns its particles and its counter-based RNG streams, making runs
//! bit-identical to serial [`PaperScenario::evaluate`] calls.
//!
//! # How job-level and filter-level parallelism share the pool
//!
//! Under the work-stealing scheduler a batch no longer owns the pool while it
//! runs. Several `run_batch` sweeps issued from separate threads execute
//! **concurrently**, their jobs interleaving across the workers fairly
//! instead of queueing whole-sweep behind one another. And when a filter
//! update *inside* a job asks its [`ClusterLayout`](mcl_core::ClusterLayout)
//! to parallelize, that nested kernel dispatch is enqueued on the job's
//! worker deque where idle workers steal it — a sweep with fewer jobs than
//! workers still lights up the whole pool at kernel granularity (the
//! single-slot scheduler forced those kernels inline). The scheduler's
//! per-dispatch concurrency caps keep job × kernel nesting from
//! oversubscribing the machine. Results are unaffected either way: kernel
//! chunking is index-keyed and worker-count invariant, and each job writes
//! only its own result slot.

use crate::metrics::{ResultAggregator, SequenceResult};
use crate::scenario::PaperScenario;
use mcl_core::precision::PipelineConfig;
use mcl_core::KernelBackend;
use serde::{Deserialize, Serialize};
use std::sync::Mutex;

/// One evaluation job: a sequence, a pipeline configuration, a particle count,
/// a seed and the kernel backend the job's filter dispatches.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchJob {
    /// Index into [`PaperScenario::sequences`].
    pub sequence_index: usize,
    /// The pipeline (precision/sensor) configuration to evaluate.
    pub pipeline: PipelineConfig,
    /// Number of particles.
    pub particles: usize,
    /// Filter seed (also the particle-initialization seed).
    pub seed: u64,
    /// Kernel backend for this job's filter. [`BatchJob::grid`] fills in the
    /// default resolution (the `MCL_KERNEL_BACKEND` override, else the
    /// host-detected backend); the backends are bit-identical, so this
    /// changes how fast a job runs, never what it returns.
    pub kernel_backend: KernelBackend,
    /// Run the job's filter under adaptive (KLD + recovery-injection)
    /// population control instead of the fixed `particles` count — see
    /// [`PaperScenario::adaptive_config`] for the population range the job
    /// then sweeps. [`BatchJob::grid`] leaves this off; flip it per job via
    /// [`BatchJob::with_adaptive`].
    pub adaptive: bool,
}

impl BatchJob {
    /// The full cross product sequences × pipelines × particle counts × seeds —
    /// the shape of the paper's evaluation grid. Every job runs under the
    /// default kernel backend; override per job via
    /// [`BatchJob::with_kernel_backend`].
    pub fn grid(
        sequence_indices: &[usize],
        pipelines: &[PipelineConfig],
        particle_counts: &[usize],
        seeds: &[u64],
    ) -> Vec<BatchJob> {
        let kernel_backend = KernelBackend::from_env().unwrap_or_else(KernelBackend::detect);
        let mut jobs = Vec::with_capacity(
            sequence_indices.len() * pipelines.len() * particle_counts.len() * seeds.len(),
        );
        for &sequence_index in sequence_indices {
            for &pipeline in pipelines {
                for &particles in particle_counts {
                    for &seed in seeds {
                        jobs.push(BatchJob {
                            sequence_index,
                            pipeline,
                            particles,
                            seed,
                            kernel_backend,
                            adaptive: false,
                        });
                    }
                }
            }
        }
        jobs
    }

    /// Returns a copy of the job pinned to `backend`.
    pub fn with_kernel_backend(mut self, backend: KernelBackend) -> Self {
        self.kernel_backend = backend;
        self
    }

    /// Returns a copy of the job with adaptive population control switched
    /// on or off.
    pub fn with_adaptive(mut self, adaptive: bool) -> Self {
        self.adaptive = adaptive;
        self
    }
}

/// One job's outcome, paired with the job that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchOutcome {
    /// The evaluated job.
    pub job: BatchJob,
    /// The metrics of the run.
    pub result: SequenceResult,
}

/// Evaluates `jobs` against `scenario` on the shared worker pool (at most
/// `threads` concurrent workers) and returns one [`BatchOutcome`] per job, in
/// job order.
///
/// Each participating thread claims the next unclaimed job off the dispatch
/// cursor, runs [`PaperScenario::evaluate`] — global uniform initialization,
/// exactly like the serial path — and stores the result at the job's slot.
/// Results are therefore identical for any `threads`, including 1 (which runs
/// serially on the calling thread without touching the pool). Concurrent
/// `run_batch` calls from different threads share the pool's workers instead
/// of serializing, and each job's own kernel dispatches are stealable too —
/// see the [module docs](self).
///
/// # Panics
///
/// Panics when `threads` is zero or a job's `sequence_index` is out of range.
pub fn run_batch(scenario: &PaperScenario, jobs: &[BatchJob], threads: usize) -> Vec<BatchOutcome> {
    assert!(threads > 0, "at least one worker thread is required");
    for job in jobs {
        assert!(
            job.sequence_index < scenario.sequences().len(),
            "job references sequence {} but the scenario has {}",
            job.sequence_index,
            scenario.sequences().len()
        );
    }
    let results: Vec<Mutex<Option<SequenceResult>>> =
        jobs.iter().map(|_| Mutex::new(None)).collect();

    let evaluate = |index: usize| {
        let job = jobs[index];
        let sequence = &scenario.sequences()[job.sequence_index];
        let result = scenario.evaluate_with_options(
            sequence,
            job.pipeline,
            job.particles,
            job.seed,
            job.kernel_backend,
            job.adaptive,
        );
        *results[index].lock().expect("result slot poisoned") = Some(result);
    };

    if threads == 1 || jobs.len() <= 1 {
        for index in 0..jobs.len() {
            evaluate(index);
        }
    } else {
        // First-class dispatch on the work-stealing scheduler: this sweep
        // runs concurrently with whatever else is in flight (other sweeps,
        // other filters), sharing the workers instead of waiting for a slot.
        mcl_core::pool::shared().dispatch_limited(jobs.len(), threads, &evaluate);
    }

    jobs.iter()
        .zip(results)
        .map(|(&job, slot)| BatchOutcome {
            job,
            result: slot
                .into_inner()
                .expect("result slot poisoned")
                .expect("every job was claimed and evaluated"),
        })
        .collect()
}

/// Folds a batch's outcomes into one [`ResultAggregator`] per predicate — e.g.
/// per pipeline configuration for the paper's Fig. 6/7 bars.
pub fn aggregate<F: Fn(&BatchJob) -> bool>(
    outcomes: &[BatchOutcome],
    select: F,
) -> ResultAggregator {
    let mut aggregator = ResultAggregator::new();
    for outcome in outcomes.iter().filter(|o| select(&o.job)) {
        aggregator.push(outcome.result);
    }
    aggregator
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_builds_the_full_cross_product() {
        let jobs = BatchJob::grid(
            &[0, 1],
            &[PipelineConfig::FP32, PipelineConfig::FP16_QM],
            &[256, 1024],
            &[1, 2, 3],
        );
        assert_eq!(jobs.len(), 2 * 2 * 2 * 3);
        assert_eq!(jobs[0].sequence_index, 0);
        assert_eq!(jobs.last().unwrap().seed, 3);
    }

    #[test]
    fn batch_matches_serial_evaluation_for_any_thread_count() {
        let scenario = PaperScenario::quick(11);
        let jobs = BatchJob::grid(&[0], &[PipelineConfig::FP32], &[128], &[1, 2]);
        let serial: Vec<SequenceResult> = jobs
            .iter()
            .map(|job| {
                scenario.evaluate(
                    &scenario.sequences()[job.sequence_index],
                    job.pipeline,
                    job.particles,
                    job.seed,
                )
            })
            .collect();
        for threads in [1usize, 2, 4] {
            let outcomes = run_batch(&scenario, &jobs, threads);
            assert_eq!(outcomes.len(), jobs.len());
            for (outcome, expected) in outcomes.iter().zip(serial.iter()) {
                assert_eq!(
                    outcome.result, *expected,
                    "threads={threads} diverged from serial evaluation"
                );
            }
        }
    }

    #[test]
    fn all_backend_jobs_return_identical_results() {
        // The kernel backends are bit-identical, so the same job grid pinned
        // to any backend must produce exactly the same metrics — across
        // both storage precisions of the paper's design space. (On non-AVX2
        // hosts the Avx2 jobs run the Lanes bodies, which keeps the
        // assertion meaningful everywhere.)
        let scenario = PaperScenario::quick(15);
        let base = BatchJob::grid(
            &[0],
            &[PipelineConfig::FP32, PipelineConfig::FP16_QM],
            &[96],
            &[1, 2],
        );
        let scalar_jobs: Vec<BatchJob> = base
            .iter()
            .map(|j| j.with_kernel_backend(KernelBackend::Scalar))
            .collect();
        let scalar = run_batch(&scenario, &scalar_jobs, 2);
        for backend in [KernelBackend::Lanes, KernelBackend::Avx2] {
            let jobs: Vec<BatchJob> = base
                .iter()
                .map(|j| j.with_kernel_backend(backend))
                .collect();
            let results = run_batch(&scenario, &jobs, 2);
            for (s, r) in scalar.iter().zip(results.iter()) {
                assert_eq!(s.result, r.result, "backends diverged on {:?}", r.job);
            }
        }
    }

    #[test]
    fn aggregate_filters_by_job() {
        let scenario = PaperScenario::quick(12);
        let jobs = BatchJob::grid(
            &[0],
            &[PipelineConfig::FP32, PipelineConfig::FP32_1TOF],
            &[64],
            &[1],
        );
        let outcomes = run_batch(&scenario, &jobs, 2);
        let two_sensor = aggregate(&outcomes, |job| job.pipeline == PipelineConfig::FP32);
        let all = aggregate(&outcomes, |_| true);
        assert_eq!(two_sensor.len(), 1);
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn adaptive_jobs_change_the_population_and_stay_deterministic() {
        let scenario = PaperScenario::quick(16);
        let fixed_jobs = BatchJob::grid(&[0], &[PipelineConfig::FP32], &[256], &[1, 2]);
        let adaptive_jobs: Vec<BatchJob> =
            fixed_jobs.iter().map(|j| j.with_adaptive(true)).collect();
        assert!(adaptive_jobs.iter().all(|j| j.adaptive));
        let fixed = run_batch(&scenario, &fixed_jobs, 2);
        // Fixed-size runs report exactly the configured population.
        for outcome in &fixed {
            assert_eq!(outcome.result.mean_particles, 256.0);
        }
        // Adaptive runs are deterministic across thread counts…
        let adaptive = run_batch(&scenario, &adaptive_jobs, 2);
        let adaptive_serial = run_batch(&scenario, &adaptive_jobs, 1);
        for (a, b) in adaptive.iter().zip(adaptive_serial.iter()) {
            assert_eq!(a.result, b.result, "adaptive job diverged across threads");
        }
        // …and actually adapt: from a global uniform init the KLD target
        // leaves the fixed count on at least one run.
        assert!(
            adaptive.iter().any(|o| o.result.mean_particles != 256.0),
            "no adaptive run ever changed its population"
        );
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_is_rejected() {
        let scenario = PaperScenario::quick(13);
        let _ = run_batch(&scenario, &[], 0);
    }

    #[test]
    #[should_panic(expected = "references sequence")]
    fn out_of_range_sequence_is_rejected() {
        let scenario = PaperScenario::quick(14);
        let job = BatchJob {
            sequence_index: 5,
            pipeline: PipelineConfig::FP32,
            particles: 64,
            seed: 1,
            kernel_backend: KernelBackend::default(),
            adaptive: false,
        };
        let _ = run_batch(&scenario, &[job], 1);
    }
}
