//! Evaluation metrics: convergence, ATE and success, as defined in §IV-A.
//!
//! The paper evaluates every run with three metrics:
//!
//! * **Time to convergence** — the first time the estimated pose is within
//!   0.2 m and 36° of the ground truth.
//! * **Absolute trajectory error (ATE)** — the mean translation error between
//!   the estimate and the ground truth over all steps *after* convergence.
//! * **Success** — a run counts as successful if, after converging, the pose
//!   tracking stays reliable until the end of the sequence, i.e. the error never
//!   exceeds 1 m again.
//!
//! [`TrajectoryErrorTracker`] accumulates these online, one estimate at a time,
//! so the runner never has to store the whole estimate history.

use mcl_core::PoseEstimate;
use mcl_gridmap::Pose2;
use mcl_num::RunningStats;
use serde::{Deserialize, Serialize};

/// The convergence gate of the paper: 0.2 m translation, 36° yaw.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceCriterion {
    /// Maximum translation error for the estimate to count as converged, metres.
    pub distance_m: f32,
    /// Maximum yaw error for the estimate to count as converged, radians.
    pub yaw_rad: f32,
    /// Error above which tracking counts as lost after convergence, metres.
    pub failure_distance_m: f32,
}

impl Default for ConvergenceCriterion {
    fn default() -> Self {
        ConvergenceCriterion {
            distance_m: 0.2,
            yaw_rad: 36f32.to_radians(),
            failure_distance_m: 1.0,
        }
    }
}

/// Outcome of evaluating one filter configuration on one sequence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SequenceResult {
    /// Number of estimate samples that were scored.
    pub steps: usize,
    /// Whether the filter ever converged.
    pub converged: bool,
    /// Time of first convergence, seconds (`None` when it never converged).
    pub convergence_time_s: Option<f64>,
    /// Mean absolute trajectory error after convergence, metres (`None` when the
    /// run never converged).
    pub ate_m: Option<f64>,
    /// Largest translation error observed after convergence, metres.
    pub max_error_after_convergence_m: Option<f64>,
    /// Whether the run counts as a success (converged and never lost tracking).
    pub success: bool,
}

impl SequenceResult {
    /// ATE as a plain number, using `default` when the run never converged
    /// (convenient for aggregate tables where failures are reported separately).
    pub fn ate_or(&self, default: f64) -> f64 {
        self.ate_m.unwrap_or(default)
    }
}

/// Online accumulator for the paper's metrics.
#[derive(Debug, Clone)]
pub struct TrajectoryErrorTracker {
    criterion: ConvergenceCriterion,
    converged_at: Option<f64>,
    errors_after_convergence: RunningStats,
    max_error_after_convergence: f64,
    steps: usize,
}

impl TrajectoryErrorTracker {
    /// Creates a tracker with the paper's default criterion.
    pub fn new(criterion: ConvergenceCriterion) -> Self {
        TrajectoryErrorTracker {
            criterion,
            converged_at: None,
            errors_after_convergence: RunningStats::new(),
            max_error_after_convergence: 0.0,
            steps: 0,
        }
    }

    /// The criterion in use.
    pub fn criterion(&self) -> &ConvergenceCriterion {
        &self.criterion
    }

    /// Whether the filter has converged so far.
    pub fn has_converged(&self) -> bool {
        self.converged_at.is_some()
    }

    /// Records one estimate against the ground truth at time `timestamp_s`.
    pub fn record(&mut self, timestamp_s: f64, estimate: &PoseEstimate, truth: &Pose2) {
        self.steps += 1;
        let translation_error = f64::from(estimate.pose.translation_distance(truth));
        if self.converged_at.is_none() {
            if estimate.is_close_to(truth, self.criterion.distance_m, self.criterion.yaw_rad) {
                self.converged_at = Some(timestamp_s);
                self.errors_after_convergence.push(translation_error);
                self.max_error_after_convergence = translation_error;
            }
            return;
        }
        self.errors_after_convergence.push(translation_error);
        if translation_error > self.max_error_after_convergence {
            self.max_error_after_convergence = translation_error;
        }
    }

    /// Finalizes the metrics.
    pub fn finish(&self) -> SequenceResult {
        let converged = self.converged_at.is_some();
        let ate = if converged {
            Some(self.errors_after_convergence.mean())
        } else {
            None
        };
        let max_error = if converged {
            Some(self.max_error_after_convergence)
        } else {
            None
        };
        let success = converged
            && self.max_error_after_convergence <= f64::from(self.criterion.failure_distance_m);
        SequenceResult {
            steps: self.steps,
            converged,
            convergence_time_s: self.converged_at,
            ate_m: ate,
            max_error_after_convergence_m: max_error,
            success,
        }
    }
}

/// Aggregates results across sequences and seeds into the numbers the paper
/// plots: mean ATE (Fig. 6), success rate in percent (Fig. 7) and the
/// distribution of convergence times (Fig. 8).
#[derive(Debug, Clone, Default)]
pub struct ResultAggregator {
    results: Vec<SequenceResult>,
}

impl ResultAggregator {
    /// Creates an empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one run's result.
    pub fn push(&mut self, result: SequenceResult) {
        self.results.push(result);
    }

    /// Number of runs recorded.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// True when no runs have been recorded.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// Mean ATE over the runs that converged, metres.
    pub fn mean_ate_m(&self) -> Option<f64> {
        let mut stats = RunningStats::new();
        for r in self.results.iter().filter(|r| r.ate_m.is_some()) {
            stats.push(r.ate_m.unwrap());
        }
        if stats.count() == 0 {
            None
        } else {
            Some(stats.mean())
        }
    }

    /// Success rate in percent (the paper's Fig. 7 y-axis).
    pub fn success_rate_percent(&self) -> f64 {
        if self.results.is_empty() {
            return 0.0;
        }
        100.0 * self.results.iter().filter(|r| r.success).count() as f64 / self.results.len() as f64
    }

    /// Fraction of runs that have converged by time `t` seconds — one point of
    /// the paper's Fig. 8 curve.
    pub fn convergence_probability_at(&self, t_s: f64) -> f64 {
        if self.results.is_empty() {
            return 0.0;
        }
        self.results
            .iter()
            .filter(|r| r.convergence_time_s.is_some_and(|c| c <= t_s))
            .count() as f64
            / self.results.len() as f64
    }

    /// Mean convergence time over converged runs, seconds.
    pub fn mean_convergence_time_s(&self) -> Option<f64> {
        let mut stats = RunningStats::new();
        for r in &self.results {
            if let Some(t) = r.convergence_time_s {
                stats.push(t);
            }
        }
        if stats.count() == 0 {
            None
        } else {
            Some(stats.mean())
        }
    }

    /// The raw results.
    pub fn results(&self) -> &[SequenceResult] {
        &self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcl_core::Particle;

    fn estimate_at(x: f32, y: f32, theta: f32) -> PoseEstimate {
        PoseEstimate::from_particles(&[Particle::<f32> {
            x,
            y,
            theta,
            weight: 1.0,
        }])
    }

    #[test]
    fn default_criterion_matches_the_paper() {
        let c = ConvergenceCriterion::default();
        assert_eq!(c.distance_m, 0.2);
        assert!((c.yaw_rad.to_degrees() - 36.0).abs() < 1e-4);
        assert_eq!(c.failure_distance_m, 1.0);
    }

    #[test]
    fn never_converged_run_is_not_successful() {
        let mut tracker = TrajectoryErrorTracker::new(ConvergenceCriterion::default());
        let truth = Pose2::new(0.0, 0.0, 0.0);
        for i in 0..10 {
            tracker.record(i as f64, &estimate_at(2.0, 2.0, 0.0), &truth);
        }
        let result = tracker.finish();
        assert!(!result.converged);
        assert!(!result.success);
        assert!(result.ate_m.is_none());
        assert!(result.convergence_time_s.is_none());
        assert_eq!(result.steps, 10);
        assert_eq!(result.ate_or(9.9), 9.9);
    }

    #[test]
    fn convergence_time_is_the_first_close_estimate() {
        let mut tracker = TrajectoryErrorTracker::new(ConvergenceCriterion::default());
        let truth = Pose2::new(1.0, 1.0, 0.0);
        tracker.record(0.0, &estimate_at(3.0, 1.0, 0.0), &truth);
        tracker.record(1.0, &estimate_at(1.5, 1.0, 0.0), &truth);
        tracker.record(2.0, &estimate_at(1.1, 1.0, 0.05), &truth);
        tracker.record(3.0, &estimate_at(1.05, 1.0, 0.0), &truth);
        let result = tracker.finish();
        assert!(result.converged);
        assert_eq!(result.convergence_time_s, Some(2.0));
        // ATE averages the errors from convergence onwards: 0.1 and 0.05.
        assert!((result.ate_m.unwrap() - 0.075).abs() < 1e-5);
        assert!(result.success);
    }

    #[test]
    fn close_position_but_wrong_heading_does_not_converge() {
        let mut tracker = TrajectoryErrorTracker::new(ConvergenceCriterion::default());
        let truth = Pose2::new(1.0, 1.0, 0.0);
        tracker.record(0.0, &estimate_at(1.05, 1.0, 2.0), &truth);
        assert!(!tracker.has_converged());
        tracker.record(1.0, &estimate_at(1.05, 1.0, 0.1), &truth);
        assert!(tracker.has_converged());
    }

    #[test]
    fn losing_track_after_convergence_fails_the_run() {
        let mut tracker = TrajectoryErrorTracker::new(ConvergenceCriterion::default());
        let truth = Pose2::new(0.0, 0.0, 0.0);
        tracker.record(0.0, &estimate_at(0.1, 0.0, 0.0), &truth);
        tracker.record(1.0, &estimate_at(0.1, 0.0, 0.0), &truth);
        tracker.record(2.0, &estimate_at(1.5, 0.0, 0.0), &truth); // lost
        let result = tracker.finish();
        assert!(result.converged);
        assert!(!result.success);
        assert!(result.max_error_after_convergence_m.unwrap() > 1.0);
    }

    #[test]
    fn aggregator_computes_figure_quantities() {
        let mut agg = ResultAggregator::new();
        assert!(agg.is_empty());
        assert_eq!(agg.success_rate_percent(), 0.0);
        assert_eq!(agg.convergence_probability_at(10.0), 0.0);
        agg.push(SequenceResult {
            steps: 100,
            converged: true,
            convergence_time_s: Some(5.0),
            ate_m: Some(0.1),
            max_error_after_convergence_m: Some(0.3),
            success: true,
        });
        agg.push(SequenceResult {
            steps: 100,
            converged: true,
            convergence_time_s: Some(20.0),
            ate_m: Some(0.2),
            max_error_after_convergence_m: Some(1.5),
            success: false,
        });
        agg.push(SequenceResult {
            steps: 100,
            converged: false,
            convergence_time_s: None,
            ate_m: None,
            max_error_after_convergence_m: None,
            success: false,
        });
        assert_eq!(agg.len(), 3);
        assert!((agg.mean_ate_m().unwrap() - 0.15).abs() < 1e-9);
        assert!((agg.success_rate_percent() - 100.0 / 3.0).abs() < 1e-9);
        assert!((agg.convergence_probability_at(10.0) - 1.0 / 3.0).abs() < 1e-9);
        assert!((agg.convergence_probability_at(30.0) - 2.0 / 3.0).abs() < 1e-9);
        assert!((agg.mean_convergence_time_s().unwrap() - 12.5).abs() < 1e-9);
    }

    #[test]
    fn empty_aggregator_returns_none_means() {
        let agg = ResultAggregator::new();
        assert!(agg.mean_ate_m().is_none());
        assert!(agg.mean_convergence_time_s().is_none());
    }
}
