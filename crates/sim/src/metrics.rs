//! Evaluation metrics: convergence, ATE and success, as defined in §IV-A.
//!
//! The paper evaluates every run with three metrics:
//!
//! * **Time to convergence** — the first time the estimated pose is within
//!   0.2 m and 36° of the ground truth.
//! * **Absolute trajectory error (ATE)** — the mean translation error between
//!   the estimate and the ground truth over all steps *after* convergence.
//! * **Success** — a run counts as successful if, after converging, the pose
//!   tracking stays reliable until the end of the sequence, i.e. the error never
//!   exceeds 1 m again.
//!
//! [`TrajectoryErrorTracker`] accumulates these online, one estimate at a time,
//! so the runner never has to store the whole estimate history.
//!
//! The scenario suite adds sequence-level stress events; two further metrics
//! score the filter under them, driven by the sequence's [`StressTimeline`]:
//!
//! * **Recovery time after kidnap** — for every kidnap instant, the time until
//!   the estimate first satisfies the convergence criterion again.
//! * **Dropout-window ATE** — the mean translation error restricted to
//!   post-convergence steps that fall inside a sensor-dropout window.

use mcl_core::PoseEstimate;
use mcl_gridmap::Pose2;
use mcl_num::RunningStats;
use serde::{Deserialize, Serialize};

/// The convergence gate of the paper: 0.2 m translation, 36° yaw.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceCriterion {
    /// Maximum translation error for the estimate to count as converged, metres.
    pub distance_m: f32,
    /// Maximum yaw error for the estimate to count as converged, radians.
    pub yaw_rad: f32,
    /// Error above which tracking counts as lost after convergence, metres.
    pub failure_distance_m: f32,
}

impl Default for ConvergenceCriterion {
    fn default() -> Self {
        ConvergenceCriterion {
            distance_m: 0.2,
            yaw_rad: 36f32.to_radians(),
            failure_distance_m: 1.0,
        }
    }
}

/// The stress events of one sequence, in sequence time: what the scenario
/// suite injected, published so the metrics can score the filter's reaction.
/// An empty timeline (the default) reproduces the paper's nominal evaluation
/// exactly.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct StressTimeline {
    /// Instants at which the drone was teleported (kidnapped-robot events),
    /// seconds since sequence start.
    pub kidnap_times_s: Vec<f64>,
    /// Inclusive `(start_s, end_s)` windows during which at least one sensor
    /// was fully dropped out.
    pub dropout_windows_s: Vec<(f64, f64)>,
}

impl StressTimeline {
    /// True when no stress events were injected.
    pub fn is_empty(&self) -> bool {
        self.kidnap_times_s.is_empty() && self.dropout_windows_s.is_empty()
    }

    /// True when `t_s` falls inside any dropout window (inclusive bounds).
    pub fn in_dropout(&self, t_s: f64) -> bool {
        self.dropout_windows_s
            .iter()
            .any(|&(start, end)| t_s >= start && t_s <= end)
    }
}

/// Outcome of evaluating one filter configuration on one sequence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SequenceResult {
    /// Number of estimate samples that were scored.
    pub steps: usize,
    /// Whether the filter ever converged.
    pub converged: bool,
    /// Time of first convergence, seconds (`None` when it never converged).
    pub convergence_time_s: Option<f64>,
    /// Mean absolute trajectory error after convergence, metres (`None` when the
    /// run never converged).
    pub ate_m: Option<f64>,
    /// Largest translation error observed after convergence, metres.
    pub max_error_after_convergence_m: Option<f64>,
    /// Whether the run counts as a success (converged and never lost tracking).
    pub success: bool,
    /// Number of kidnap events in the sequence's stress timeline.
    pub kidnaps: usize,
    /// How many of those kidnaps the filter re-localized from.
    pub kidnaps_recovered: usize,
    /// Mean time from a kidnap to re-satisfying the convergence criterion,
    /// seconds (`None` when no kidnap was recovered from).
    pub mean_recovery_time_s: Option<f64>,
    /// Mean translation error over post-convergence steps inside sensor-dropout
    /// windows, metres (`None` when no such step was scored).
    pub dropout_ate_m: Option<f64>,
    /// Mean post-resampling particle population over the applied updates of
    /// the run — the configured count for a fixed-size filter, lower on
    /// average under adaptive (KLD) population control. `0` when the harness
    /// that produced the result did not record populations (the tracker
    /// itself scores poses only; `run_sequence` fills this in from the filter
    /// counters).
    pub mean_particles: f32,
}

impl SequenceResult {
    /// ATE as a plain number, using `default` when the run never converged
    /// (convenient for aggregate tables where failures are reported separately).
    pub fn ate_or(&self, default: f64) -> f64 {
        self.ate_m.unwrap_or(default)
    }
}

/// Online accumulator for the paper's metrics (plus the stress metrics when a
/// [`StressTimeline`] is supplied).
#[derive(Debug, Clone)]
pub struct TrajectoryErrorTracker {
    criterion: ConvergenceCriterion,
    timeline: StressTimeline,
    converged_at: Option<f64>,
    errors_after_convergence: RunningStats,
    max_error_after_convergence: f64,
    steps: usize,
    next_kidnap: usize,
    active_kidnap: Option<f64>,
    recovery_times: RunningStats,
    dropout_errors: RunningStats,
}

impl TrajectoryErrorTracker {
    /// Creates a tracker with the paper's default criterion and no stress
    /// timeline (the nominal evaluation).
    pub fn new(criterion: ConvergenceCriterion) -> Self {
        Self::with_timeline(criterion, StressTimeline::default())
    }

    /// Creates a tracker that additionally scores recovery time after the
    /// timeline's kidnaps and the ATE inside its dropout windows. Kidnap
    /// instants are processed in ascending order regardless of the order they
    /// appear in `timeline`.
    pub fn with_timeline(criterion: ConvergenceCriterion, mut timeline: StressTimeline) -> Self {
        timeline
            .kidnap_times_s
            .sort_by(|a, b| a.partial_cmp(b).expect("kidnap times are finite"));
        TrajectoryErrorTracker {
            criterion,
            timeline,
            converged_at: None,
            errors_after_convergence: RunningStats::new(),
            max_error_after_convergence: 0.0,
            steps: 0,
            next_kidnap: 0,
            active_kidnap: None,
            recovery_times: RunningStats::new(),
            dropout_errors: RunningStats::new(),
        }
    }

    /// The criterion in use.
    pub fn criterion(&self) -> &ConvergenceCriterion {
        &self.criterion
    }

    /// The stress timeline in use (empty for nominal runs).
    pub fn timeline(&self) -> &StressTimeline {
        &self.timeline
    }

    /// Whether the filter has converged so far.
    pub fn has_converged(&self) -> bool {
        self.converged_at.is_some()
    }

    /// Records one estimate against the ground truth at time `timestamp_s`.
    pub fn record(&mut self, timestamp_s: f64, estimate: &PoseEstimate, truth: &Pose2) {
        self.steps += 1;
        let translation_error = f64::from(estimate.pose.translation_distance(truth));
        let close = estimate.is_close_to(truth, self.criterion.distance_m, self.criterion.yaw_rad);

        // Kidnap bookkeeping: arm the most recent kidnap whose instant has
        // passed (a kidnap arriving before the previous one was recovered
        // abandons the earlier one — it counts as not recovered).
        while self.next_kidnap < self.timeline.kidnap_times_s.len()
            && self.timeline.kidnap_times_s[self.next_kidnap] <= timestamp_s
        {
            self.active_kidnap = Some(self.timeline.kidnap_times_s[self.next_kidnap]);
            self.next_kidnap += 1;
        }
        if let Some(kidnapped_at) = self.active_kidnap {
            if close {
                self.recovery_times.push(timestamp_s - kidnapped_at);
                self.active_kidnap = None;
            }
        }

        // Convergence and ATE, exactly the paper's accounting.
        if self.converged_at.is_none() {
            if close {
                self.converged_at = Some(timestamp_s);
                self.errors_after_convergence.push(translation_error);
                self.max_error_after_convergence = translation_error;
            }
        } else {
            self.errors_after_convergence.push(translation_error);
            if translation_error > self.max_error_after_convergence {
                self.max_error_after_convergence = translation_error;
            }
        }

        // Dropout-window ATE follows the same post-convergence rule as the
        // plain ATE, restricted to steps inside a window.
        if self.converged_at.is_some() && self.timeline.in_dropout(timestamp_s) {
            self.dropout_errors.push(translation_error);
        }
    }

    /// Finalizes the metrics.
    pub fn finish(&self) -> SequenceResult {
        let converged = self.converged_at.is_some();
        let ate = if converged {
            Some(self.errors_after_convergence.mean())
        } else {
            None
        };
        let max_error = if converged {
            Some(self.max_error_after_convergence)
        } else {
            None
        };
        let success = converged
            && self.max_error_after_convergence <= f64::from(self.criterion.failure_distance_m);
        let mean_recovery_time_s = if self.recovery_times.count() > 0 {
            Some(self.recovery_times.mean())
        } else {
            None
        };
        let dropout_ate_m = if self.dropout_errors.count() > 0 {
            Some(self.dropout_errors.mean())
        } else {
            None
        };
        SequenceResult {
            steps: self.steps,
            converged,
            convergence_time_s: self.converged_at,
            ate_m: ate,
            max_error_after_convergence_m: max_error,
            success,
            kidnaps: self.timeline.kidnap_times_s.len(),
            kidnaps_recovered: self.recovery_times.count() as usize,
            mean_recovery_time_s,
            dropout_ate_m,
            mean_particles: 0.0,
        }
    }
}

/// Aggregates results across sequences and seeds into the numbers the paper
/// plots: mean ATE (Fig. 6), success rate in percent (Fig. 7) and the
/// distribution of convergence times (Fig. 8).
#[derive(Debug, Clone, Default)]
pub struct ResultAggregator {
    results: Vec<SequenceResult>,
}

impl ResultAggregator {
    /// Creates an empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one run's result.
    pub fn push(&mut self, result: SequenceResult) {
        self.results.push(result);
    }

    /// Number of runs recorded.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// True when no runs have been recorded.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// Mean ATE over the runs that converged, metres.
    pub fn mean_ate_m(&self) -> Option<f64> {
        let mut stats = RunningStats::new();
        for r in self.results.iter().filter(|r| r.ate_m.is_some()) {
            stats.push(r.ate_m.unwrap());
        }
        if stats.count() == 0 {
            None
        } else {
            Some(stats.mean())
        }
    }

    /// Success rate in percent (the paper's Fig. 7 y-axis).
    pub fn success_rate_percent(&self) -> f64 {
        if self.results.is_empty() {
            return 0.0;
        }
        100.0 * self.results.iter().filter(|r| r.success).count() as f64 / self.results.len() as f64
    }

    /// Fraction of runs that have converged by time `t` seconds — one point of
    /// the paper's Fig. 8 curve.
    pub fn convergence_probability_at(&self, t_s: f64) -> f64 {
        if self.results.is_empty() {
            return 0.0;
        }
        self.results
            .iter()
            .filter(|r| r.convergence_time_s.is_some_and(|c| c <= t_s))
            .count() as f64
            / self.results.len() as f64
    }

    /// Mean convergence time over converged runs, seconds.
    pub fn mean_convergence_time_s(&self) -> Option<f64> {
        let mut stats = RunningStats::new();
        for r in &self.results {
            if let Some(t) = r.convergence_time_s {
                stats.push(t);
            }
        }
        if stats.count() == 0 {
            None
        } else {
            Some(stats.mean())
        }
    }

    /// Percentage of kidnap events (across all runs) the filter re-localized
    /// from; `None` when no run contained a kidnap.
    pub fn recovery_rate_percent(&self) -> Option<f64> {
        let kidnaps: usize = self.results.iter().map(|r| r.kidnaps).sum();
        if kidnaps == 0 {
            return None;
        }
        let recovered: usize = self.results.iter().map(|r| r.kidnaps_recovered).sum();
        Some(100.0 * recovered as f64 / kidnaps as f64)
    }

    /// Mean of the per-run mean recovery times, seconds; `None` when no run
    /// recovered from a kidnap.
    pub fn mean_recovery_time_s(&self) -> Option<f64> {
        let mut stats = RunningStats::new();
        for r in &self.results {
            if let Some(t) = r.mean_recovery_time_s {
                stats.push(t);
            }
        }
        if stats.count() == 0 {
            None
        } else {
            Some(stats.mean())
        }
    }

    /// Mean of the per-run dropout-window ATEs, metres; `None` when no run
    /// scored a dropout step.
    pub fn mean_dropout_ate_m(&self) -> Option<f64> {
        let mut stats = RunningStats::new();
        for r in &self.results {
            if let Some(a) = r.dropout_ate_m {
                stats.push(a);
            }
        }
        if stats.count() == 0 {
            None
        } else {
            Some(stats.mean())
        }
    }

    /// Mean of the per-run mean particle populations, over the runs that
    /// recorded one; `None` when no run did. For adaptive sweeps this is the
    /// average population the filters actually paid for.
    pub fn mean_particles(&self) -> Option<f64> {
        let mut stats = RunningStats::new();
        for r in &self.results {
            if r.mean_particles > 0.0 {
                stats.push(f64::from(r.mean_particles));
            }
        }
        if stats.count() == 0 {
            None
        } else {
            Some(stats.mean())
        }
    }

    /// The raw results.
    pub fn results(&self) -> &[SequenceResult] {
        &self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcl_core::Particle;

    fn estimate_at(x: f32, y: f32, theta: f32) -> PoseEstimate {
        PoseEstimate::from_particles(&[Particle::<f32> {
            x,
            y,
            theta,
            weight: 1.0,
        }])
    }

    fn nominal_result(
        steps: usize,
        convergence_time_s: Option<f64>,
        ate_m: Option<f64>,
        max_error_after_convergence_m: Option<f64>,
        success: bool,
    ) -> SequenceResult {
        SequenceResult {
            steps,
            converged: convergence_time_s.is_some(),
            convergence_time_s,
            ate_m,
            max_error_after_convergence_m,
            success,
            kidnaps: 0,
            kidnaps_recovered: 0,
            mean_recovery_time_s: None,
            dropout_ate_m: None,
            mean_particles: 0.0,
        }
    }

    #[test]
    fn default_criterion_matches_the_paper() {
        let c = ConvergenceCriterion::default();
        assert_eq!(c.distance_m, 0.2);
        assert!((c.yaw_rad.to_degrees() - 36.0).abs() < 1e-4);
        assert_eq!(c.failure_distance_m, 1.0);
    }

    #[test]
    fn never_converged_run_is_not_successful() {
        let mut tracker = TrajectoryErrorTracker::new(ConvergenceCriterion::default());
        let truth = Pose2::new(0.0, 0.0, 0.0);
        for i in 0..10 {
            tracker.record(i as f64, &estimate_at(2.0, 2.0, 0.0), &truth);
        }
        let result = tracker.finish();
        assert!(!result.converged);
        assert!(!result.success);
        assert!(result.ate_m.is_none());
        assert!(result.convergence_time_s.is_none());
        assert_eq!(result.steps, 10);
        assert_eq!(result.ate_or(9.9), 9.9);
    }

    #[test]
    fn convergence_time_is_the_first_close_estimate() {
        let mut tracker = TrajectoryErrorTracker::new(ConvergenceCriterion::default());
        let truth = Pose2::new(1.0, 1.0, 0.0);
        tracker.record(0.0, &estimate_at(3.0, 1.0, 0.0), &truth);
        tracker.record(1.0, &estimate_at(1.5, 1.0, 0.0), &truth);
        tracker.record(2.0, &estimate_at(1.1, 1.0, 0.05), &truth);
        tracker.record(3.0, &estimate_at(1.05, 1.0, 0.0), &truth);
        let result = tracker.finish();
        assert!(result.converged);
        assert_eq!(result.convergence_time_s, Some(2.0));
        // ATE averages the errors from convergence onwards: 0.1 and 0.05.
        assert!((result.ate_m.unwrap() - 0.075).abs() < 1e-5);
        assert!(result.success);
    }

    #[test]
    fn close_position_but_wrong_heading_does_not_converge() {
        let mut tracker = TrajectoryErrorTracker::new(ConvergenceCriterion::default());
        let truth = Pose2::new(1.0, 1.0, 0.0);
        tracker.record(0.0, &estimate_at(1.05, 1.0, 2.0), &truth);
        assert!(!tracker.has_converged());
        tracker.record(1.0, &estimate_at(1.05, 1.0, 0.1), &truth);
        assert!(tracker.has_converged());
    }

    #[test]
    fn losing_track_after_convergence_fails_the_run() {
        let mut tracker = TrajectoryErrorTracker::new(ConvergenceCriterion::default());
        let truth = Pose2::new(0.0, 0.0, 0.0);
        tracker.record(0.0, &estimate_at(0.1, 0.0, 0.0), &truth);
        tracker.record(1.0, &estimate_at(0.1, 0.0, 0.0), &truth);
        tracker.record(2.0, &estimate_at(1.5, 0.0, 0.0), &truth); // lost
        let result = tracker.finish();
        assert!(result.converged);
        assert!(!result.success);
        assert!(result.max_error_after_convergence_m.unwrap() > 1.0);
    }

    #[test]
    fn aggregator_computes_figure_quantities() {
        let mut agg = ResultAggregator::new();
        assert!(agg.is_empty());
        assert_eq!(agg.success_rate_percent(), 0.0);
        assert_eq!(agg.convergence_probability_at(10.0), 0.0);
        agg.push(nominal_result(100, Some(5.0), Some(0.1), Some(0.3), true));
        agg.push(nominal_result(100, Some(20.0), Some(0.2), Some(1.5), false));
        agg.push(nominal_result(100, None, None, None, false));
        assert_eq!(agg.len(), 3);
        assert!((agg.mean_ate_m().unwrap() - 0.15).abs() < 1e-9);
        assert!((agg.success_rate_percent() - 100.0 / 3.0).abs() < 1e-9);
        assert!((agg.convergence_probability_at(10.0) - 1.0 / 3.0).abs() < 1e-9);
        assert!((agg.convergence_probability_at(30.0) - 2.0 / 3.0).abs() < 1e-9);
        assert!((agg.mean_convergence_time_s().unwrap() - 12.5).abs() < 1e-9);
    }

    #[test]
    fn empty_aggregator_returns_none_means() {
        let agg = ResultAggregator::new();
        assert!(agg.mean_ate_m().is_none());
        assert!(agg.mean_convergence_time_s().is_none());
        assert!(agg.recovery_rate_percent().is_none());
        assert!(agg.mean_recovery_time_s().is_none());
        assert!(agg.mean_dropout_ate_m().is_none());
    }

    #[test]
    fn nominal_runs_report_no_stress_metrics() {
        let mut tracker = TrajectoryErrorTracker::new(ConvergenceCriterion::default());
        let truth = Pose2::new(0.0, 0.0, 0.0);
        tracker.record(0.0, &estimate_at(0.1, 0.0, 0.0), &truth);
        let result = tracker.finish();
        assert_eq!(result.kidnaps, 0);
        assert_eq!(result.kidnaps_recovered, 0);
        assert!(result.mean_recovery_time_s.is_none());
        assert!(result.dropout_ate_m.is_none());
        assert!(tracker.timeline().is_empty());
    }

    #[test]
    fn kidnap_recovery_time_is_measured_from_the_kidnap_instant() {
        let timeline = StressTimeline {
            kidnap_times_s: vec![2.0],
            dropout_windows_s: vec![],
        };
        let mut tracker =
            TrajectoryErrorTracker::with_timeline(ConvergenceCriterion::default(), timeline);
        let truth = Pose2::new(0.0, 0.0, 0.0);
        // Converged from the start.
        tracker.record(0.0, &estimate_at(0.05, 0.0, 0.0), &truth);
        tracker.record(1.0, &estimate_at(0.05, 0.0, 0.0), &truth);
        // Kidnap at t = 2 s: the estimate is far for two steps…
        tracker.record(2.0, &estimate_at(2.0, 0.0, 0.0), &truth);
        tracker.record(3.0, &estimate_at(1.5, 0.0, 0.0), &truth);
        // …and close again at t = 4 s → recovery took 2 s.
        tracker.record(4.0, &estimate_at(0.1, 0.0, 0.0), &truth);
        let result = tracker.finish();
        assert_eq!(result.kidnaps, 1);
        assert_eq!(result.kidnaps_recovered, 1);
        assert!((result.mean_recovery_time_s.unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn unrecovered_kidnap_counts_but_reports_no_time() {
        let timeline = StressTimeline {
            kidnap_times_s: vec![1.0],
            dropout_windows_s: vec![],
        };
        let mut tracker =
            TrajectoryErrorTracker::with_timeline(ConvergenceCriterion::default(), timeline);
        let truth = Pose2::new(0.0, 0.0, 0.0);
        tracker.record(0.0, &estimate_at(0.05, 0.0, 0.0), &truth);
        tracker.record(1.0, &estimate_at(3.0, 0.0, 0.0), &truth);
        tracker.record(2.0, &estimate_at(3.0, 0.0, 0.0), &truth);
        let result = tracker.finish();
        assert_eq!(result.kidnaps, 1);
        assert_eq!(result.kidnaps_recovered, 0);
        assert!(result.mean_recovery_time_s.is_none());
    }

    #[test]
    fn dropout_ate_scores_only_post_convergence_window_steps() {
        let timeline = StressTimeline {
            kidnap_times_s: vec![],
            dropout_windows_s: vec![(2.0, 3.0)],
        };
        assert!(timeline.in_dropout(2.0) && timeline.in_dropout(3.0));
        assert!(!timeline.in_dropout(1.99) && !timeline.in_dropout(3.01));
        let mut tracker =
            TrajectoryErrorTracker::with_timeline(ConvergenceCriterion::default(), timeline);
        let truth = Pose2::new(0.0, 0.0, 0.0);
        tracker.record(0.0, &estimate_at(0.05, 0.0, 0.0), &truth); // converged
        tracker.record(1.0, &estimate_at(0.30, 0.0, 0.0), &truth); // outside window
        tracker.record(2.0, &estimate_at(0.40, 0.0, 0.0), &truth); // in window
        tracker.record(3.0, &estimate_at(0.20, 0.0, 0.0), &truth); // in window
        tracker.record(4.0, &estimate_at(0.90, 0.0, 0.0), &truth); // outside window
        let result = tracker.finish();
        // Mean of 0.40 and 0.20 only.
        assert!((result.dropout_ate_m.unwrap() - 0.3).abs() < 1e-6);
        // The plain ATE still averages every post-convergence step.
        assert!((result.ate_m.unwrap() - (0.05 + 0.30 + 0.40 + 0.20 + 0.90) / 5.0).abs() < 1e-6);
    }

    #[test]
    fn aggregator_folds_stress_metrics() {
        let mut agg = ResultAggregator::new();
        let mut kidnapped = nominal_result(50, Some(1.0), Some(0.1), Some(0.2), true);
        kidnapped.kidnaps = 2;
        kidnapped.kidnaps_recovered = 1;
        kidnapped.mean_recovery_time_s = Some(3.0);
        let mut dropped = nominal_result(50, Some(1.0), Some(0.1), Some(0.2), true);
        dropped.kidnaps = 1;
        dropped.kidnaps_recovered = 1;
        dropped.mean_recovery_time_s = Some(5.0);
        dropped.dropout_ate_m = Some(0.4);
        agg.push(kidnapped);
        agg.push(dropped);
        agg.push(nominal_result(50, None, None, None, false));
        // 2 of 3 kidnaps recovered across the batch.
        assert!((agg.recovery_rate_percent().unwrap() - 200.0 / 3.0).abs() < 1e-12);
        assert!((agg.mean_recovery_time_s().unwrap() - 4.0).abs() < 1e-12);
        assert!((agg.mean_dropout_ate_m().unwrap() - 0.4).abs() < 1e-12);
    }
}
