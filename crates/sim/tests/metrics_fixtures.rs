//! Hand-computed fixtures for the evaluation metrics (§IV-A) and the batch
//! aggregation filters.
//!
//! The aggregator quantities behind Figs. 6–8 (`convergence_probability_at`,
//! `mean_convergence_time_s`, `success_rate_percent`, `mean_ate_m`) and the
//! `aggregate` job filter were previously exercised only through the figure
//! binaries; these tests pin them against arithmetic done by hand.

use mcl_core::precision::PipelineConfig;
use mcl_core::{Particle, PoseEstimate};
use mcl_gridmap::Pose2;
use mcl_sim::{
    aggregate, run_batch, BatchJob, ConvergenceCriterion, PaperScenario, ResultAggregator,
    SequenceResult, StressTimeline, TrajectoryErrorTracker,
};

fn estimate_at(x: f32, y: f32, theta: f32) -> PoseEstimate {
    PoseEstimate::from_particles(&[Particle::<f32> {
        x,
        y,
        theta,
        weight: 1.0,
    }])
}

fn result(convergence_time_s: Option<f64>, ate_m: Option<f64>, success: bool) -> SequenceResult {
    SequenceResult {
        steps: 100,
        converged: convergence_time_s.is_some(),
        convergence_time_s,
        ate_m,
        max_error_after_convergence_m: ate_m,
        success,
        kidnaps: 0,
        kidnaps_recovered: 0,
        mean_recovery_time_s: None,
        dropout_ate_m: None,
        mean_particles: 0.0,
    }
}

#[test]
fn convergence_probability_matches_hand_counts() {
    let mut agg = ResultAggregator::new();
    // Convergence times: 2 s, 4 s, 8 s, and one run that never converged.
    agg.push(result(Some(2.0), Some(0.10), true));
    agg.push(result(Some(4.0), Some(0.20), true));
    agg.push(result(Some(8.0), Some(0.30), false));
    agg.push(result(None, None, false));
    assert_eq!(agg.len(), 4);
    // Before the first convergence: nobody converged.
    assert_eq!(agg.convergence_probability_at(1.99), 0.0);
    // The boundary is inclusive (converged at exactly t counts at t).
    assert_eq!(agg.convergence_probability_at(2.0), 1.0 / 4.0);
    assert_eq!(agg.convergence_probability_at(3.9), 1.0 / 4.0);
    assert_eq!(agg.convergence_probability_at(4.0), 2.0 / 4.0);
    assert_eq!(agg.convergence_probability_at(7.9), 2.0 / 4.0);
    assert_eq!(agg.convergence_probability_at(8.0), 3.0 / 4.0);
    // The never-converged run caps the curve below 1.
    assert_eq!(agg.convergence_probability_at(1e6), 3.0 / 4.0);
}

#[test]
fn mean_convergence_time_averages_converged_runs_only() {
    let mut agg = ResultAggregator::new();
    assert!(agg.mean_convergence_time_s().is_none());
    agg.push(result(Some(2.0), Some(0.1), true));
    agg.push(result(None, None, false));
    agg.push(result(Some(7.0), Some(0.2), true));
    // (2 + 7) / 2 — the unconverged run must not drag the mean.
    assert!((agg.mean_convergence_time_s().unwrap() - 4.5).abs() < 1e-12);
    // Same rule for the ATE mean: (0.1 + 0.2) / 2.
    assert!((agg.mean_ate_m().unwrap() - 0.15).abs() < 1e-12);
}

#[test]
fn success_rate_is_percent_of_all_runs() {
    let mut agg = ResultAggregator::new();
    assert_eq!(agg.success_rate_percent(), 0.0);
    // 2 successes out of 5 runs = 40 % — failures and never-converged runs
    // both count in the denominator (the paper's Fig. 7 definition).
    agg.push(result(Some(1.0), Some(0.1), true));
    agg.push(result(Some(2.0), Some(0.1), true));
    agg.push(result(Some(3.0), Some(1.8), false));
    agg.push(result(None, None, false));
    agg.push(result(None, None, false));
    assert!((agg.success_rate_percent() - 40.0).abs() < 1e-12);
    assert_eq!(agg.results().len(), 5);
}

#[test]
fn tracker_success_boundary_is_inclusive_at_the_failure_distance() {
    // Converge immediately, then drift to exactly the failure distance (1 m):
    // `max_error <= failure_distance` still counts as success.
    let mut tracker = TrajectoryErrorTracker::new(ConvergenceCriterion::default());
    let truth = Pose2::new(0.0, 0.0, 0.0);
    tracker.record(0.0, &estimate_at(0.05, 0.0, 0.0), &truth);
    tracker.record(1.0, &estimate_at(1.0, 0.0, 0.0), &truth);
    let at_boundary = tracker.finish();
    assert!(at_boundary.converged);
    assert!(at_boundary.success, "exactly 1 m must still be a success");
    assert!((at_boundary.max_error_after_convergence_m.unwrap() - 1.0).abs() < 1e-6);
    // One millimetre further and the run fails.
    let mut tracker = TrajectoryErrorTracker::new(ConvergenceCriterion::default());
    tracker.record(0.0, &estimate_at(0.05, 0.0, 0.0), &truth);
    tracker.record(1.0, &estimate_at(1.001, 0.0, 0.0), &truth);
    assert!(!tracker.finish().success);
}

#[test]
fn tracker_ate_is_the_mean_from_convergence_onwards() {
    let mut tracker = TrajectoryErrorTracker::new(ConvergenceCriterion::default());
    let truth = Pose2::new(2.0, 2.0, 0.0);
    // Far for two steps (ignored), then converge with errors 0.1, 0.2, 0.15.
    tracker.record(0.0, &estimate_at(0.0, 0.0, 0.0), &truth);
    tracker.record(1.0, &estimate_at(3.5, 2.0, 0.0), &truth);
    tracker.record(2.0, &estimate_at(2.1, 2.0, 0.0), &truth);
    tracker.record(3.0, &estimate_at(2.0, 2.2, 0.0), &truth);
    tracker.record(4.0, &estimate_at(2.15, 2.0, 0.0), &truth);
    let result = tracker.finish();
    assert_eq!(result.steps, 5);
    assert_eq!(result.convergence_time_s, Some(2.0));
    assert!((result.ate_m.unwrap() - (0.1 + 0.2 + 0.15) / 3.0).abs() < 1e-6);
    assert!(result.success);
}

#[test]
fn recovery_time_after_kidnap_matches_hand_arithmetic() {
    // Two kidnaps at t = 3 s and t = 10 s. The filter recovers from the first
    // at t = 5 s (2 s) and from the second at t = 13 s (3 s):
    // mean recovery = (2 + 3) / 2 = 2.5 s.
    let timeline = StressTimeline {
        kidnap_times_s: vec![10.0, 3.0], // deliberately unsorted
        dropout_windows_s: vec![],
    };
    let mut tracker =
        TrajectoryErrorTracker::with_timeline(ConvergenceCriterion::default(), timeline);
    let truth = Pose2::new(0.0, 0.0, 0.0);
    let close = estimate_at(0.1, 0.0, 0.0);
    let far = estimate_at(4.0, 0.0, 0.0);
    tracker.record(0.0, &close, &truth); // converged immediately
    tracker.record(3.0, &far, &truth); // kidnap 1
    tracker.record(4.0, &far, &truth);
    tracker.record(5.0, &close, &truth); // recovered after 2 s
    tracker.record(10.0, &far, &truth); // kidnap 2
    tracker.record(13.0, &close, &truth); // recovered after 3 s
    let result = tracker.finish();
    assert_eq!(result.kidnaps, 2);
    assert_eq!(result.kidnaps_recovered, 2);
    assert!((result.mean_recovery_time_s.unwrap() - 2.5).abs() < 1e-12);
    // The post-kidnap excursions exceed 1 m, so the paper's success criterion
    // correctly fails the run even though both kidnaps were recovered.
    assert!(result.converged);
    assert!(!result.success);
}

#[test]
fn back_to_back_kidnaps_abandon_the_unrecovered_one() {
    // A second kidnap arrives before the filter recovered from the first: the
    // first counts as not recovered, the recovery clock restarts at the
    // second's instant.
    let timeline = StressTimeline {
        kidnap_times_s: vec![2.0, 4.0],
        dropout_windows_s: vec![],
    };
    let mut tracker =
        TrajectoryErrorTracker::with_timeline(ConvergenceCriterion::default(), timeline);
    let truth = Pose2::new(0.0, 0.0, 0.0);
    tracker.record(0.0, &estimate_at(0.1, 0.0, 0.0), &truth);
    tracker.record(2.0, &estimate_at(4.0, 0.0, 0.0), &truth); // kidnap 1, never recovered
    tracker.record(4.0, &estimate_at(4.0, 0.0, 0.0), &truth); // kidnap 2
    tracker.record(7.0, &estimate_at(0.1, 0.0, 0.0), &truth); // recovered: 7 - 4 = 3 s
    let result = tracker.finish();
    assert_eq!(result.kidnaps, 2);
    assert_eq!(result.kidnaps_recovered, 1);
    assert!((result.mean_recovery_time_s.unwrap() - 3.0).abs() < 1e-12);
}

#[test]
fn dropout_window_ate_matches_hand_arithmetic() {
    // Window [2 s, 4 s], converged from t = 1 s. Errors inside the window are
    // 0.3, 0.5, 0.1 → dropout ATE = 0.3; the full ATE averages every
    // post-convergence step: (0.05 + 0.3 + 0.5 + 0.1 + 0.2) / 5 = 0.23.
    let timeline = StressTimeline {
        kidnap_times_s: vec![],
        dropout_windows_s: vec![(2.0, 4.0)],
    };
    let mut tracker =
        TrajectoryErrorTracker::with_timeline(ConvergenceCriterion::default(), timeline);
    let truth = Pose2::new(0.0, 0.0, 0.0);
    tracker.record(0.0, &estimate_at(5.0, 0.0, 0.0), &truth); // not yet converged
    tracker.record(1.0, &estimate_at(0.05, 0.0, 0.0), &truth); // converges
    tracker.record(2.0, &estimate_at(0.3, 0.0, 0.0), &truth); // in window
    tracker.record(3.0, &estimate_at(0.5, 0.0, 0.0), &truth); // in window
    tracker.record(4.0, &estimate_at(0.1, 0.0, 0.0), &truth); // in window (inclusive)
    tracker.record(5.0, &estimate_at(0.2, 0.0, 0.0), &truth); // outside
    let result = tracker.finish();
    assert!((result.dropout_ate_m.unwrap() - 0.3).abs() < 1e-7);
    assert!((result.ate_m.unwrap() - 0.23).abs() < 1e-7);
    assert_eq!(result.kidnaps, 0);
}

#[test]
fn pre_convergence_dropout_steps_are_not_scored() {
    // The window covers only never-converged steps → no dropout ATE, exactly
    // like the plain ATE rule.
    let timeline = StressTimeline {
        kidnap_times_s: vec![],
        dropout_windows_s: vec![(0.0, 1.0)],
    };
    let mut tracker =
        TrajectoryErrorTracker::with_timeline(ConvergenceCriterion::default(), timeline);
    let truth = Pose2::new(0.0, 0.0, 0.0);
    tracker.record(0.0, &estimate_at(5.0, 0.0, 0.0), &truth);
    tracker.record(1.0, &estimate_at(5.0, 0.0, 0.0), &truth);
    tracker.record(2.0, &estimate_at(0.1, 0.0, 0.0), &truth); // converges after the window
    let result = tracker.finish();
    assert!(result.dropout_ate_m.is_none());
    assert!(result.converged);
}

#[test]
fn aggregator_recovery_rate_counts_kidnaps_not_runs() {
    let mut agg = ResultAggregator::new();
    let mut a = result(Some(1.0), Some(0.1), true);
    a.kidnaps = 3;
    a.kidnaps_recovered = 2;
    a.mean_recovery_time_s = Some(2.0);
    let mut b = result(Some(1.0), Some(0.1), true);
    b.kidnaps = 1;
    b.kidnaps_recovered = 0;
    agg.push(a);
    agg.push(b);
    agg.push(result(None, None, false)); // nominal run: no kidnaps
                                         // 2 recovered out of 4 kidnaps = 50 %, regardless of run count.
    assert!((agg.recovery_rate_percent().unwrap() - 50.0).abs() < 1e-12);
    // Only runs that recovered contribute a recovery time.
    assert!((agg.mean_recovery_time_s().unwrap() - 2.0).abs() < 1e-12);
    assert!(agg.mean_dropout_ate_m().is_none());
}

#[test]
fn aggregate_filters_outcomes_by_job_predicate() {
    let scenario = PaperScenario::quick(21);
    let jobs = BatchJob::grid(
        &[0],
        &[PipelineConfig::FP32, PipelineConfig::FP32_1TOF],
        &[64],
        &[1, 2],
    );
    assert_eq!(jobs.len(), 4);
    let outcomes = run_batch(&scenario, &jobs, 2);

    // Filter by pipeline: exactly the two FP32 outcomes.
    let fp32 = aggregate(&outcomes, |job| job.pipeline == PipelineConfig::FP32);
    assert_eq!(fp32.len(), 2);
    // Filter by seed: exactly the two seed-1 outcomes.
    let seed_one = aggregate(&outcomes, |job| job.seed == 1);
    assert_eq!(seed_one.len(), 2);
    // Conjunction: one outcome.
    let both = aggregate(&outcomes, |job| {
        job.pipeline == PipelineConfig::FP32 && job.seed == 2
    });
    assert_eq!(both.len(), 1);
    // The aggregated slice really is the selected subset, in job order.
    let selected: Vec<_> = outcomes
        .iter()
        .filter(|o| o.job.pipeline == PipelineConfig::FP32)
        .map(|o| o.result)
        .collect();
    assert_eq!(fp32.results(), selected.as_slice());
    // An always-false predicate yields an empty aggregator with safe stats.
    let none = aggregate(&outcomes, |_| false);
    assert!(none.is_empty());
    assert!(none.mean_ate_m().is_none());
    assert_eq!(none.success_rate_percent(), 0.0);
    assert_eq!(none.convergence_probability_at(100.0), 0.0);
}
