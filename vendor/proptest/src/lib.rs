//! Offline vendored stub of the [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! Provides the `proptest!` macro, `prop_assert*` assertions, range/tuple/
//! collection strategies and `any::<T>()` over a deterministic SplitMix64
//! stream. Unlike the real crate there is **no shrinking** and no persisted
//! failure regressions: a failing case panics with the case number and the
//! formatted assertion message, which — because the stream is seeded from the
//! test name — is reproducible run to run.
//!
//! The subset mirrors real proptest closely enough that swapping this path
//! dependency for the genuine crate requires no source changes in the tests.

#![deny(unsafe_code)]

pub mod test_runner {
    //! Config, error type and the deterministic RNG driving each test.

    use std::fmt;

    /// Mirror of `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of randomized cases to run per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` randomized cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Failure raised by `prop_assert*` inside a test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Builds a failure carrying `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic SplitMix64 stream feeding the strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream; tests derive the seed from their name so every
        /// test gets a distinct but reproducible sequence.
        pub fn seeded(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform `usize` in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "cannot sample below 0");
            (self.next_u64() % bound as u64) as usize
        }
    }

    /// FNV-1a hash used to derive per-test seeds from test names.
    pub fn seed_from_name(name: &str) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        hash
    }
}

pub mod strategy {
    //! The `Strategy` trait and its range/tuple implementations.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value from the deterministic stream.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    // Rounding can land exactly on `end`; resample to keep the
                    // range half-open (u = 0 yields `start`, so this terminates).
                    loop {
                        let v = self.start + (self.end - self.start) * rng.unit_f64() as $t;
                        if v < self.end {
                            return v;
                        }
                    }
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty strategy range");
                    start + (end - start) * rng.unit_f64() as $t
                }
            }
        )*};
    }
    impl_float_range!(f32, f64);

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty strategy range");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (start as i128 + v as i128) as $t
                }
            }
        )*};
    }
    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// Strategy yielding one fixed value (mirror of `proptest::strategy::Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` and the `Arbitrary` trait.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            // Finite full-range floats; NaN/inf edge cases are not produced.
            ((rng.unit_f64() - 0.5) * 2.0 * f64::from(f32::MAX / 2.0)) as f32
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            (rng.unit_f64() - 0.5) * f64::MAX
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            crate::sample::Index::from_raw(rng.next_u64())
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (mirror of `proptest::arbitrary::any`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (mirror of `proptest::collection`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length bounds for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty collection size range");
            SizeRange {
                min: range.start,
                max: range.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange {
                min: len,
                max: len + 1,
            }
        }
    }

    /// Strategy generating `Vec`s of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max - self.size.min;
            let len = self.size.min + if span == 0 { 0 } else { rng.below(span) };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy for `Vec`s with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    //! Index sampling (mirror of `proptest::sample`).

    /// A position into any collection, resolved against a length with
    /// [`Index::index`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index {
        raw: u64,
    }

    impl Index {
        /// Wraps a raw draw.
        pub fn from_raw(raw: u64) -> Self {
            Index { raw }
        }

        /// Resolves the draw against a collection of `len` elements.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index into an empty collection");
            (self.raw % len as u64) as usize
        }
    }
}

pub mod prelude {
    //! Glob-importable surface (mirror of `proptest::prelude`).

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Module alias so `prop::collection::vec` / `prop::sample::Index` resolve
    /// exactly as with the real crate.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Defines deterministic randomized tests (mirror of `proptest::proptest!`).
///
/// Each `fn name(arg in strategy, ...) { body }` expands to a `#[test]`-able
/// function running `cases` samples; `prop_assert*` failures panic with the
/// case number.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $( $arg:ident in $strategy:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let seed = $crate::test_runner::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
                let mut rng = $crate::test_runner::TestRng::seeded(seed);
                for case in 0..config.cases {
                    $( let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng); )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(err) = outcome {
                        panic!("proptest case {case} of {} failed: {err}", config.cases);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $( $arg:ident in $strategy:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $( $arg in $strategy ),+ ) $body
            )*
        }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// whole process) via an early `Err` return.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert!` for equality, printing both operands on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// `prop_assert!` for inequality, printing both operands on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn float_ranges_stay_in_bounds(x in 0.25f32..0.75, y in -2.0f64..=2.0) {
            prop_assert!((0.25..0.75).contains(&x));
            prop_assert!((-2.0..=2.0).contains(&y));
        }

        #[test]
        fn vectors_respect_the_size_range(
            v in prop::collection::vec((0usize..10, 0.0f32..1.0), 2..30),
            pick in any::<prop::sample::Index>(),
        ) {
            prop_assert!((2..30).contains(&v.len()));
            let (a, b) = v[pick.index(v.len())];
            prop_assert!(a < 10);
            prop_assert!((0.0..1.0).contains(&b));
            prop_assert_eq!(a, a);
            prop_assert_ne!(v.len(), 0);
        }
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = crate::test_runner::TestRng::seeded(5);
        let mut b = crate::test_runner::TestRng::seeded(5);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
