//! Offline vendored stub of `serde_derive`.
//!
//! The stub `serde` crate implements its marker `Serialize`/`Deserialize`
//! traits for every type with blanket impls, so the derive macros here have
//! nothing to generate: they accept the item and expand to an empty token
//! stream. This keeps `#[derive(Serialize, Deserialize)]` source-compatible
//! with the real crate pair.

use proc_macro::TokenStream;

/// No-op mirror of `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op mirror of `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
