//! Offline vendored stub of the [`criterion`](https://crates.io/crates/criterion) crate.
//!
//! Implements the subset of criterion's API the `mcl-bench` suite uses —
//! `criterion_group!`/`criterion_main!`, benchmark groups, `bench_function`,
//! `bench_with_input`, `iter`/`iter_batched`, `BenchmarkId`, `BatchSize` —
//! backed by a wall-clock timer instead of criterion's full statistical
//! machinery. Good enough to compare medians offline and to keep `cargo bench`
//! runnable without registry access; swap the path dependency for the real
//! crate when it is available.
//!
//! Statistics: every benchmark runs a configurable number of **warm-up
//! iterations** (cache/branch-predictor warming, untimed) followed by the
//! timed samples. The reported time is the **median after
//! median-absolute-deviation outlier rejection**: samples farther than
//! `3.5 × MAD` from the raw median — OS scheduling hiccups, frequency
//! transitions — are discarded before the final median is taken, and the
//! rejected count is reported so noisy runs are visible.
//!
//! Environment knobs (used by the CI bench-smoke job):
//!
//! * `MCL_BENCH_QUICK=1` — 5 samples / 1 warm-up instead of 10 / 3.
//! * `MCL_BENCH_JSON=<path>` — append one JSON line per benchmark
//!   (`{"label":…,"median_ns":…,"samples":…,"rejected":…,"cpu_features":…}`)
//!   to `<path>`; `cpu_features` records the host's detected SIMD extensions
//!   (`avx2`/`fma`/`f16c`) so archived medians are attributable to a CPU
//!   class.

#![deny(unsafe_code)]

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Opaque blackbox re-export; prevents the optimizer from deleting a value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How a batched setup's output is sized (API mirror; the stub times every
/// batch the same way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifier of a single benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A compound id `function_name/parameter`.
    pub fn new<S: Display, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id carrying only the parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Robust summary of one benchmark's timed samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleStats {
    /// Median of the samples that survived outlier rejection.
    pub median: Duration,
    /// Number of samples kept.
    pub kept: usize,
    /// Number of samples rejected as outliers.
    pub rejected: usize,
}

fn median_of(sorted: &[Duration]) -> Duration {
    sorted[sorted.len() / 2]
}

/// Median-absolute-deviation outlier rejection: samples farther than
/// `3.5 × MAD` from the raw median are dropped, then the median of the
/// survivors is returned. With `MAD == 0` (at timer resolution) nothing is
/// rejected.
pub fn robust_stats(samples: &[Duration]) -> Option<SampleStats> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let raw_median = median_of(&sorted);
    let mut deviations: Vec<Duration> = sorted.iter().map(|&s| s.abs_diff(raw_median)).collect();
    deviations.sort_unstable();
    let mad = median_of(&deviations);
    if mad.is_zero() {
        return Some(SampleStats {
            median: raw_median,
            kept: sorted.len(),
            rejected: 0,
        });
    }
    let cutoff = mad.mul_f64(3.5);
    let kept: Vec<Duration> = sorted
        .iter()
        .copied()
        .filter(|&s| s.abs_diff(raw_median) <= cutoff)
        .collect();
    Some(SampleStats {
        median: median_of(&kept),
        rejected: sorted.len() - kept.len(),
        kept: kept.len(),
    })
}

/// The SIMD-relevant CPU features of the machine the benchmark ran on, as a
/// comma-separated list (`"avx2,fma,f16c"` on a fully capable x86-64 host,
/// `""` elsewhere). Archived with every JSON line so consumers comparing
/// explicit-SIMD medians against a model — e.g. the `modeled_vs_measured`
/// fixture in `mcl_gap9::cost` — can tell whether an `avx2`-labelled entry
/// really exercised the intrinsics or a fallback.
pub fn cpu_features() -> String {
    #[cfg(target_arch = "x86_64")]
    {
        let mut features = Vec::new();
        if std::arch::is_x86_feature_detected!("avx2") {
            features.push("avx2");
        }
        if std::arch::is_x86_feature_detected!("fma") {
            features.push("fma");
        }
        if std::arch::is_x86_feature_detected!("f16c") {
            features.push("f16c");
        }
        features.join(",")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        String::new()
    }
}

/// Appends one JSON line describing a finished benchmark to `path`.
/// The label is escaped for the characters benchmark ids can contain.
pub fn append_json_line(path: &str, label: &str, stats: &SampleStats) -> std::io::Result<()> {
    let escaped: String = label
        .chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if c.is_control() => vec![' '],
            c => vec![c],
        })
        .collect();
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(
        file,
        "{{\"label\":\"{escaped}\",\"median_ns\":{},\"samples\":{},\"rejected\":{},\"cpu_features\":\"{}\"}}",
        stats.median.as_nanos(),
        stats.kept,
        stats.rejected,
        cpu_features()
    )
}

/// The timing driver handed to benchmark closures.
pub struct Bencher {
    samples: u64,
    warm_up: u64,
    /// Measured per-iteration durations, one per sample.
    recorded: Vec<Duration>,
}

impl Bencher {
    fn new(samples: u64, warm_up: u64) -> Self {
        Bencher {
            samples,
            warm_up,
            recorded: Vec::new(),
        }
    }

    /// Times `routine`, running it once per sample after the warm-up calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.warm_up {
            black_box(routine());
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.recorded.push(start.elapsed());
        }
    }

    /// Times `routine` on inputs produced by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.warm_up {
            black_box(routine(setup()));
        }
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.recorded.push(start.elapsed());
        }
    }

    /// Like [`Bencher::iter_batched`] but hands the routine `&mut` access.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        for _ in 0..self.warm_up {
            let mut input = setup();
            black_box(routine(&mut input));
        }
        for _ in 0..self.samples {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.recorded.push(start.elapsed());
        }
    }

    fn stats(&self) -> Option<SampleStats> {
        robust_stats(&self.recorded)
    }
}

fn report(group: &str, id: &str, bencher: &Bencher) {
    let label = if group.is_empty() {
        id.to_owned()
    } else {
        format!("{group}/{id}")
    };
    match bencher.stats() {
        Some(stats) => {
            println!(
                "{label:<50} time: [{:?} median of {} samples, {} outliers rejected]",
                stats.median, stats.kept, stats.rejected
            );
            if let Ok(path) = std::env::var("MCL_BENCH_JSON") {
                if !path.is_empty() {
                    if let Err(err) = append_json_line(&path, &label, &stats) {
                        eprintln!("warning: could not append to {path}: {err}");
                    }
                }
            }
        }
        None => println!("{label:<50} time: [no samples recorded]"),
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    warm_up: u64,
    sample_cap: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // The stub caps samples: it reports medians, not confidence intervals,
        // so large sample counts only burn wall-clock time (and quick mode
        // lowers the cap further). Say so out loud rather than silently
        // under-sampling what the bench asked for.
        self.sample_size = (n as u64).clamp(1, self.sample_cap);
        if n as u64 != self.sample_size {
            println!(
                "note: sample_size({n}) clamped to {} by the offline criterion stub",
                self.sample_size
            );
        }
        self
    }

    /// Sets the number of untimed warm-up iterations per benchmark.
    pub fn warm_up_iterations(&mut self, n: usize) -> &mut Self {
        self.warm_up = n as u64;
        self
    }

    /// Declares a throughput for reporting (accepted, not used by the stub).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size, self.warm_up);
        f(&mut bencher);
        report(&self.name, &id.id, &bencher);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size, self.warm_up);
        f(&mut bencher, input);
        report(&self.name, &id.id, &bencher);
        self
    }

    /// Finishes the group.
    pub fn finish(&mut self) {}
}

/// Throughput declaration (API mirror).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark driver.
pub struct Criterion {
    default_sample_size: u64,
    default_warm_up: u64,
    sample_cap: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // MCL_BENCH_QUICK trades precision for wall-clock time; the CI
        // bench-smoke job sets it so the perf trajectory is archived cheaply.
        let quick = std::env::var("MCL_BENCH_QUICK").is_ok_and(|v| v == "1");
        Criterion {
            default_sample_size: if quick { 5 } else { 10 },
            default_warm_up: if quick { 1 } else { 3 },
            sample_cap: if quick { 5 } else { 20 },
        }
    }
}

impl Criterion {
    /// Accepts (and ignores) harness CLI arguments such as `--bench`.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the default number of warm-up iterations.
    pub fn warm_up_iterations(mut self, n: usize) -> Self {
        self.default_warm_up = n as u64;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("benchmark group: {name}");
        BenchmarkGroup {
            name,
            sample_size: self.default_sample_size,
            warm_up: self.default_warm_up,
            sample_cap: self.sample_cap,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.default_sample_size, self.default_warm_up);
        f(&mut bencher);
        report("", &id.id, &bencher);
        self
    }
}

/// Declares a function bundling benchmark targets (mirror of criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        );
    };
}

/// Declares the `main` entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_warm_up_before_the_timed_samples() {
        let mut b = Bencher::new(5, 3);
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(calls, 8); // 3 warm-up + 5 samples
        assert_eq!(b.recorded.len(), 5);
        assert!(b.stats().is_some());

        let mut batched = Bencher::new(4, 2);
        let mut setup_calls = 0u32;
        batched.iter_batched(
            || {
                setup_calls += 1;
                0u8
            },
            |v| v,
            BatchSize::SmallInput,
        );
        assert_eq!(setup_calls, 6); // warm-up setups included, not timed
        assert_eq!(batched.recorded.len(), 4);
    }

    #[test]
    fn mad_rejection_drops_a_planted_outlier() {
        let mut samples: Vec<Duration> =
            (0..9).map(|i| Duration::from_micros(100 + i % 3)).collect();
        samples.push(Duration::from_millis(50)); // scheduler hiccup
        let stats = robust_stats(&samples).unwrap();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.kept, 9);
        assert!(stats.median < Duration::from_micros(110));
    }

    #[test]
    fn zero_mad_keeps_every_sample() {
        let samples = vec![Duration::from_micros(7); 6];
        let stats = robust_stats(&samples).unwrap();
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.kept, 6);
        assert_eq!(stats.median, Duration::from_micros(7));
        assert!(robust_stats(&[]).is_none());
    }

    #[test]
    fn median_is_robust_against_a_skewed_tail() {
        // A tight cluster with jitter plus a slow tail of almost half the
        // samples: the raw median sits at the cluster's edge, MAD rejection
        // drops the whole tail and re-centres the median on the cluster.
        let mut samples: Vec<Duration> = (0..5).map(|i| Duration::from_micros(100 + i)).collect();
        samples.extend((0..4).map(|i| Duration::from_micros(5000 + 100 * i)));
        let stats = robust_stats(&samples).unwrap();
        assert_eq!(stats.median, Duration::from_micros(102));
        assert_eq!(stats.rejected, 4);
        assert_eq!(stats.kept, 5);
    }

    #[test]
    fn json_lines_are_appended_and_escaped() {
        let path =
            std::env::temp_dir().join(format!("criterion_stub_test_{}.jsonl", std::process::id()));
        let path_str = path.to_str().unwrap();
        let _ = std::fs::remove_file(&path);
        let stats = SampleStats {
            median: Duration::from_nanos(1234),
            kept: 10,
            rejected: 1,
        };
        append_json_line(path_str, "group/bench \"quoted\"", &stats).unwrap();
        append_json_line(path_str, "second", &stats).unwrap();
        let contents = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = contents.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\\\"quoted\\\""));
        assert!(lines[0].contains("\"median_ns\":1234"));
        assert!(lines[1].contains("\"samples\":10"));
        // Every line is stamped with the host's SIMD features (possibly the
        // empty list) so archived medians are attributable to a CPU class.
        let features = cpu_features();
        for line in &lines {
            assert!(line.contains(&format!("\"cpu_features\":\"{features}\"")));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn cpu_features_is_a_comma_list_of_known_names() {
        let features = cpu_features();
        for feature in features.split(',').filter(|f| !f.is_empty()) {
            assert!(
                ["avx2", "fma", "f16c"].contains(&feature),
                "unexpected feature name {feature:?}"
            );
        }
    }

    #[test]
    fn group_runs_benchmarks_without_panicking() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.sample_size(3).warm_up_iterations(1);
        group.bench_function("add", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4, |b, &n| {
            b.iter_batched(|| vec![0u8; n], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
