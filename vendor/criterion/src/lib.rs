//! Offline vendored stub of the [`criterion`](https://crates.io/crates/criterion) crate.
//!
//! Implements the subset of criterion's API the `mcl-bench` suite uses —
//! `criterion_group!`/`criterion_main!`, benchmark groups, `bench_function`,
//! `bench_with_input`, `iter`/`iter_batched`, `BenchmarkId`, `BatchSize` —
//! backed by a simple wall-clock median-of-samples timer instead of
//! criterion's full statistical machinery. Good enough to compare orders of
//! magnitude and to keep `cargo bench` runnable offline; swap the path
//! dependency for the real crate when registry access is available.

#![deny(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque blackbox re-export; prevents the optimizer from deleting a value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How a batched setup's output is sized (API mirror; the stub times every
/// batch the same way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifier of a single benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A compound id `function_name/parameter`.
    pub fn new<S: Display, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id carrying only the parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The timing driver handed to benchmark closures.
pub struct Bencher {
    samples: u64,
    /// Measured per-iteration durations, one per sample.
    recorded: Vec<Duration>,
}

impl Bencher {
    fn new(samples: u64) -> Self {
        Bencher {
            samples,
            recorded: Vec::new(),
        }
    }

    /// Times `routine`, running it once per sample after one warm-up call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.recorded.push(start.elapsed());
        }
    }

    /// Times `routine` on inputs produced by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.recorded.push(start.elapsed());
        }
    }

    /// Like [`Bencher::iter_batched`] but hands the routine `&mut` access.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut input = setup();
        black_box(routine(&mut input));
        for _ in 0..self.samples {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.recorded.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Option<Duration> {
        if self.recorded.is_empty() {
            return None;
        }
        self.recorded.sort_unstable();
        Some(self.recorded[self.recorded.len() / 2])
    }
}

fn report(group: &str, id: &str, bencher: &mut Bencher) {
    let label = if group.is_empty() {
        id.to_owned()
    } else {
        format!("{group}/{id}")
    };
    match bencher.median() {
        Some(median) => println!(
            "{label:<50} time: [{median:?} median of {} samples]",
            bencher.samples
        ),
        None => println!("{label:<50} time: [no samples recorded]"),
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // The stub caps samples: it reports medians, not confidence intervals,
        // so large sample counts only burn wall-clock time. Say so out loud
        // rather than silently under-sampling what the bench asked for.
        self.sample_size = (n as u64).clamp(1, 20);
        if n as u64 != self.sample_size {
            println!(
                "note: sample_size({n}) clamped to {} by the offline criterion stub",
                self.sample_size
            );
        }
        self
    }

    /// Declares a throughput for reporting (accepted, not used by the stub).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        report(&self.name, &id.id, &mut bencher);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        report(&self.name, &id.id, &mut bencher);
        self
    }

    /// Finishes the group.
    pub fn finish(&mut self) {}
}

/// Throughput declaration (API mirror).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark driver.
pub struct Criterion {
    default_sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Accepts (and ignores) harness CLI arguments such as `--bench`.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("benchmark group: {name}");
        BenchmarkGroup {
            name,
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.default_sample_size);
        f(&mut bencher);
        report("", &id.id, &mut bencher);
        self
    }
}

/// Declares a function bundling benchmark targets (mirror of criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        );
    };
}

/// Declares the `main` entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut b = Bencher::new(5);
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(calls, 6); // warm-up + 5 samples
        assert_eq!(b.recorded.len(), 5);
        assert!(b.median().is_some());
    }

    #[test]
    fn group_runs_benchmarks_without_panicking() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        group.bench_function("add", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4, |b, &n| {
            b.iter_batched(|| vec![0u8; n], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
