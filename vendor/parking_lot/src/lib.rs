//! Offline vendored stub of the [`parking_lot`](https://crates.io/crates/parking_lot) crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s panic-free,
//! non-poisoning API (`lock()` returns the guard directly). The performance
//! characteristics of the real crate are not reproduced — only its interface —
//! which is all the workspace's logging path needs.

#![deny(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Mutex with `parking_lot`'s non-poisoning API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex`, a panicked holder does not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: guard }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Reader–writer lock with `parking_lot`'s non-poisoning API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader–writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guard_derefs_to_the_value() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }
}
