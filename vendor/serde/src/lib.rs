//! Offline vendored stub of the [`serde`](https://crates.io/crates/serde) crate.
//!
//! The workspace uses `Serialize`/`Deserialize` derives purely as *capability
//! markers* today — nothing in the tree serializes to a concrete format (CSV
//! export is hand-rolled, there is no `serde_json`). Since the build
//! environment has no registry access, this stub keeps the derives and trait
//! bounds compiling by declaring the two traits and implementing them for
//! every type; the companion `serde_derive` proc-macros expand to nothing.
//!
//! If a future change needs real serialization, replace the `vendor/serde`
//! path dependency with the real crate — every `#[derive(Serialize,
//! Deserialize)]` in the tree is written against the genuine API.

#![deny(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker mirror of `serde::Serialize`; satisfied by every type.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker mirror of `serde::Deserialize<'de>`; satisfied by every sized type.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

/// Marker mirror of `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Mirror of the `serde::de` module path.
pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

/// Mirror of the `serde::ser` module path.
pub mod ser {
    pub use super::Serialize;
}

#[cfg(test)]
mod tests {
    fn assert_bounds<T: crate::Serialize + crate::DeserializeOwned>() {}

    #[test]
    fn common_types_satisfy_the_marker_traits() {
        assert_bounds::<u8>();
        assert_bounds::<Vec<(f32, String)>>();
        assert_bounds::<Option<[u64; 4]>>();
    }
}
