//! Offline vendored stub of the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This workspace builds in environments with no access to a crates.io
//! registry, so the handful of `rand` 0.8 APIs the code base uses are
//! re-implemented here behind the same paths (`rand::Rng`,
//! `rand::SeedableRng`, `rand::rngs::StdRng`, …). The generator is a
//! SplitMix64 stream: statistically solid for simulation noise and test
//! seeding, deterministic for a given seed, and dependency-free.
//!
//! The subset is intentionally small; extend it (or swap the path
//! dependency for the real crate) rather than working around it.

#![deny(unsafe_code)]

/// Low-level source of randomness (mirror of `rand_core::RngCore`).
pub trait RngCore {
    /// Next raw 32-bit value.
    fn next_u32(&mut self) -> u32;
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods (mirror of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution
    /// (`f32`/`f64` uniform in `[0, 1)`, integers over their full range).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 random bits give a uniform f64 in [0, 1).
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a seed (mirror of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the generator from a single `u64`, mixing it into the full
    /// seed state. Identical seeds produce identical streams.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod distributions {
    //! Minimal mirror of `rand::distributions`.

    use super::RngCore;
    use core::ops::{Range, RangeInclusive};

    /// A distribution that can produce values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution (uniform `[0, 1)` floats, full-range ints).
    pub struct Standard;

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// A range that can be sampled from (mirror of `rand::distributions::uniform::SampleRange`).
    pub trait SampleRange<T> {
        /// Draws one value uniformly from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! impl_sample_range_int {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (start as i128 + v as i128) as $t
                }
            }
        )*};
    }
    impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_sample_range_float {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    // Rounding in `start + span * u` can land exactly on `end`
                    // even for u < 1; resample to keep the range half-open
                    // (u = 0 always yields `start`, so this terminates).
                    loop {
                        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                        let v = self.start + (self.end - self.start) * u as $t;
                        if v < self.end {
                            return v;
                        }
                    }
                }
            }
        )*};
    }
    impl_sample_range_float!(f32, f64);
}

pub mod rngs {
    //! Concrete generators (mirror of `rand::rngs`).

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: a SplitMix64 stream.
    ///
    /// Not the ChaCha12 generator of the real `rand` crate, but it shares the
    /// properties the code base relies on: `seed_from_u64` determinism and
    /// good uniformity for simulation noise.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut state = 0u64;
            for chunk in seed.chunks(8) {
                let mut bytes = [0u8; 8];
                bytes[..chunk.len()].copy_from_slice(chunk);
                state ^= u64::from_le_bytes(bytes).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            }
            StdRng { state }
        }

        fn seed_from_u64(state: u64) -> Self {
            // One scramble so consecutive seeds give unrelated streams.
            let mut z = state.wrapping_add(0x2545_F491_4F6C_DD1D);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            StdRng {
                state: z ^ (z >> 31),
            }
        }
    }

    /// Alias kept for API compatibility with `rand::rngs::SmallRng`.
    pub type SmallRng = StdRng;
}

// Re-exports matching the real crate layout.
pub use distributions::{Distribution, SampleRange, Standard};

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<f32>(), b.gen::<f32>());
        }
    }

    #[test]
    fn unit_floats_stay_in_range_and_average_half() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0f64;
        for _ in 0..10_000 {
            let v = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&v));
            sum += f64::from(v);
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.01);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let i = rng.gen_range(2..300usize);
            assert!((2..300).contains(&i));
            let f = rng.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }
}
