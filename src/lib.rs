//! # tof-mcl — Fully on-board low-power localization with multizone ToF sensors
//!
//! Umbrella crate for the reproduction of *"Fully On-board Low-Power Localization
//! with Multizone Time-of-Flight Sensors on Nano-UAVs"* (DATE 2023). It re-exports
//! every workspace crate under one roof so the examples and integration tests can
//! use a single dependency, mirroring how a downstream user would consume the
//! project.
//!
//! The individual crates are:
//!
//! * [`num`] — software binary16, quantization, running statistics, angle math.
//! * [`gridmap`] — occupancy grid maps, Euclidean distance transforms, maze maps.
//! * [`sensor`] — VL53L5CX multizone ToF sensor model.
//! * [`core`] — Monte Carlo Localization (the paper's contribution).
//! * [`gap9`] — GAP9 SoC platform model (latency, memory, power).
//! * [`sim`] — flight simulation, sequence generation and evaluation metrics.
//! * [`platform`] — the Crazyflie/GAP9 firmware pipeline of the paper's Fig. 2.
//! * [`baselines`] — UWB trilateration and dead-reckoning baselines.
//! * [`fleet`] — localization-as-a-service: a sharded multi-drone fleet server.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for a complete, runnable walk-through: it builds
//! the paper's drone-maze map, simulates a flight, runs the particle filter at
//! 4096 particles and prints the absolute trajectory error.

#![deny(unsafe_code)]

pub use mcl_baselines as baselines;
pub use mcl_core as core;
pub use mcl_fleet as fleet;
pub use mcl_gap9 as gap9;
pub use mcl_gridmap as gridmap;
pub use mcl_num as num;
pub use mcl_platform as platform;
pub use mcl_sensor as sensor;
pub use mcl_sim as sim;
