//! One vs. two ToF sensors (the paper's `fp32 1tof` ablation).
//!
//! Evaluates the same flights once with both the forward and rear sensors and
//! once with the forward sensor only. The paper finds that the second sensor
//! significantly improves the success rate and the convergence speed; this
//! example shows the same trend on simulated sequences.
//!
//! Run with `cargo run --release --example single_sensor`.

use tof_mcl::core::precision::PipelineConfig;
use tof_mcl::sim::{PaperScenario, ResultAggregator};

fn main() {
    let scenario = PaperScenario::with_settings(13, 2, 30.0);
    let particles = 4096;
    let seeds = 2u64;

    let mut both = ResultAggregator::new();
    let mut single = ResultAggregator::new();
    for sequence in scenario.sequences() {
        for seed in 1..=seeds {
            both.push(scenario.evaluate(sequence, PipelineConfig::FP32, particles, seed));
            single.push(scenario.evaluate(sequence, PipelineConfig::FP32_1TOF, particles, seed));
        }
    }

    println!(
        "Front + rear vs. front-only ToF ({} runs each, {} particles)\n",
        both.len(),
        particles
    );
    println!(
        "{:<22} {:>12} {:>12} {:>20}",
        "configuration", "ATE (m)", "success (%)", "mean conv. time (s)"
    );
    for (name, agg) in [
        ("two sensors (fp32)", &both),
        ("one sensor (fp32 1tof)", &single),
    ] {
        println!(
            "{:<22} {:>12} {:>12.1} {:>20}",
            name,
            agg.mean_ate_m()
                .map(|a| format!("{a:.3}"))
                .unwrap_or_else(|| "-".into()),
            agg.success_rate_percent(),
            agg.mean_convergence_time_s()
                .map(|t| format!("{t:.1}"))
                .unwrap_or_else(|| "never".into()),
        );
    }
    println!("\nThe paper observes the same ordering: the rear sensor markedly improves");
    println!("the success rate and shortens the time to convergence.");
}
