//! Quickstart: localize one simulated flight in the paper's drone maze.
//!
//! Builds the 31.2 m² evaluation maze, simulates a short flight with two
//! multizone ToF sensors and drifting Flow-deck odometry, runs the particle
//! filter at 4096 particles from a global (uniform) initialization, and prints
//! the paper's three metrics: convergence time, ATE after convergence and
//! success.
//!
//! Run with `cargo run --release --example quickstart`.

use tof_mcl::core::precision::PipelineConfig;
use tof_mcl::sim::PaperScenario;

fn main() {
    println!("Building the 31.2 m^2 drone maze and simulating a 30 s flight...");
    let scenario = PaperScenario::with_settings(42, 1, 30.0);
    let sequence = &scenario.sequences()[0];
    println!(
        "  map: {:.1} m x {:.1} m at {:.2} m/cell ({} cells)",
        scenario.map().width_m(),
        scenario.map().height_m(),
        scenario.map().resolution(),
        scenario.map().cell_count()
    );
    println!(
        "  sequence: {} steps over {:.1} s, {:.1} m of flight path",
        sequence.len(),
        sequence.duration_s(),
        sequence
            .ground_truth()
            .windows(2)
            .map(|w| w[0].translation_distance(&w[1]))
            .sum::<f32>()
    );

    println!("\nRunning Monte Carlo localization (fp16qm, 4096 particles)...");
    let result = scenario.evaluate(sequence, PipelineConfig::FP16_QM, 4096, 1);

    match result.convergence_time_s {
        Some(t) => println!("  converged after {t:.1} s"),
        None => println!("  did not converge within the sequence"),
    }
    if let Some(ate) = result.ate_m {
        println!("  absolute trajectory error after convergence: {ate:.3} m");
    }
    println!("  success: {}", if result.success { "yes" } else { "no" });
    println!("\n(The paper reports ~0.15 m ATE and >95 % success for this configuration.)");
}
