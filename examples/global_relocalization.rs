//! Global re-localization (the paper's Fig. 1 scenario).
//!
//! The filter is initialized uniformly over the *whole* 31.2 m² map — including
//! the three artificial mazes that look similar to the physical one — while the
//! drone actually flies in the physical maze. The example prints the estimate
//! error over time: the estimate typically starts in a wrong maze and snaps to
//! the correct one once enough observations accumulate, exactly the behaviour
//! Fig. 1 of the paper illustrates.
//!
//! Run with `cargo run --release --example global_relocalization`.

use tof_mcl::core::{MclConfig, MonteCarloLocalization};
use tof_mcl::sensor::SensorRig;
use tof_mcl::sim::PaperScenario;

fn main() {
    let scenario = PaperScenario::with_settings(7, 1, 40.0);
    let sequence = &scenario.sequences()[0];

    let mut filter = MonteCarloLocalization::<f32, _>::new(
        MclConfig::default().with_particles(4096).with_seed(3),
        scenario.edt_quantized().clone(),
    )
    .expect("valid configuration");
    filter
        .initialize_uniform(scenario.map(), 3)
        .expect("maze has free space");

    println!("Global localization with 4096 particles over the full 31.2 m^2 map");
    println!("(the drone flies only inside the 16 m^2 physical maze)\n");
    println!(
        "{:>8} {:>12} {:>14} {:>12}",
        "t (s)", "error (m)", "spread (m)", "in wrong half"
    );

    let mut converged_at = None;
    for (i, step) in sequence.steps.iter().enumerate() {
        filter.predict(step.odometry);
        let beams = SensorRig::frames_to_beams(&step.frames);
        let _ = filter.update(&beams).expect("filter is initialized");
        let estimate = filter.estimate();
        let error = estimate.pose.translation_distance(&step.ground_truth);
        if converged_at.is_none() && error < 0.2 {
            converged_at = Some(step.timestamp_s);
        }
        if i % 30 == 0 {
            // The physical maze occupies x < 4 m; an estimate beyond that is in
            // one of the artificial mazes.
            let wrong_half = estimate.pose.x > 4.0;
            println!(
                "{:>8.1} {:>12.3} {:>14.3} {:>12}",
                step.timestamp_s,
                error,
                estimate.position_std_m,
                if wrong_half { "yes" } else { "no" }
            );
        }
    }
    match converged_at {
        Some(t) => println!("\nFirst converged to within 0.2 m after {t:.1} s."),
        None => println!("\nDid not converge within this sequence (try more particles)."),
    }
}
