//! Global re-localization and kidnapped-robot recovery (the paper's Fig. 1
//! scenario, driven by the scenario suite).
//!
//! The suite's `paper-kidnap` scenario initializes the filter uniformly over
//! the *whole* 31.2 m² map — including the three artificial mazes that look
//! similar to the physical one — and additionally teleports the drone halfway
//! through the flight while the recorded odometry reports no motion: the
//! kidnapped-robot problem. The example prints the estimate error over time
//! (the estimate typically starts in a wrong maze, snaps to the correct one,
//! is thrown off by the kidnap and must re-localize) and finishes with the
//! suite's recovery metrics.
//!
//! Run with `cargo run --release --example global_relocalization`.

use tof_mcl::core::{MclConfig, MonteCarloLocalization};
use tof_mcl::sensor::{ObservationBatch, SensorRig};
use tof_mcl::sim::suite::ScenarioSuite;
use tof_mcl::sim::{ConvergenceCriterion, TrajectoryErrorTracker};

fn main() {
    // The registered kidnapped-robot scenario, stretched to a 40 s flight so
    // the filter has time to converge both before and after the kidnap.
    let mut spec = ScenarioSuite::standard()
        .get("paper-kidnap")
        .expect("the suite registers the kidnapped-robot scenario")
        .clone();
    spec.num_sequences = 1;
    spec.duration_s = 40.0;
    let scenario = spec.build(7);
    let sequence = &scenario.sequences()[0];
    let kidnap_at = sequence.stress.kidnap_times_s[0];

    let mut filter = MonteCarloLocalization::<f32, _>::new(
        MclConfig::default().with_particles(4096).with_seed(3),
        scenario.edt_quantized().clone(),
    )
    .expect("valid configuration");
    filter
        .initialize_uniform(scenario.map(), 3)
        .expect("maze has free space");

    println!("Scenario '{}' with 4096 particles:", spec.name);
    println!("global localization over the full 31.2 m^2 map, then a kidnap");
    println!("(teleport with zero reported odometry) at t = {kidnap_at:.1} s\n");
    println!(
        "{:>8} {:>12} {:>14} {:>12}",
        "t (s)", "error (m)", "spread (m)", "in wrong half"
    );

    let mut tracker = TrajectoryErrorTracker::with_timeline(
        ConvergenceCriterion::default(),
        sequence.stress.clone(),
    );
    for (i, step) in sequence.steps.iter().enumerate() {
        filter.predict(step.odometry);
        let beams = SensorRig::frames_to_beams(&step.frames);
        let mut observations = ObservationBatch::from_beams(&beams);
        observations.partition_in_range(filter.config().r_max);
        let _ = filter
            .update_observations(&observations)
            .expect("filter is initialized");
        let estimate = filter.estimate();
        tracker.record(step.timestamp_s, &estimate, &step.ground_truth);
        let error = estimate.pose.translation_distance(&step.ground_truth);
        if i % 30 == 0 {
            // The physical maze occupies x < 4 m; an estimate beyond that is in
            // one of the artificial mazes.
            let wrong_half = estimate.pose.x > 4.0;
            println!(
                "{:>8.1} {:>12.3} {:>14.3} {:>12}",
                step.timestamp_s,
                error,
                estimate.position_std_m,
                if wrong_half { "yes" } else { "no" }
            );
        }
    }

    let result = tracker.finish();
    println!();
    match result.convergence_time_s {
        Some(t) => println!("First converged to within 0.2 m after {t:.1} s."),
        None => println!("Did not converge before the kidnap (try more particles)."),
    }
    match result.mean_recovery_time_s {
        Some(t) => println!(
            "Recovered from the kidnap in {t:.1} s ({} of {} kidnaps).",
            result.kidnaps_recovered, result.kidnaps
        ),
        None => println!(
            "Did not re-localize after the kidnap within this sequence ({} kidnap).",
            result.kidnaps
        ),
    }
}
