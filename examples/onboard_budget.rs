//! On-board budget report: latency, memory and power of the full pipeline.
//!
//! Runs the modelled firmware pipeline (Fig. 2 of the paper) over a simulated
//! flight and prints the budget a system integrator cares about: per-update
//! latency against the 15 Hz deadline, where the working set lives in the GAP9
//! memory hierarchy, and the sensing + processing share of the drone's power.
//!
//! Run with `cargo run --release --example onboard_budget`.

use tof_mcl::gap9::{OperatingPoint, PowerModel};
use tof_mcl::platform::{OnboardPipeline, PipelineConfig};
use tof_mcl::sim::PaperScenario;

fn main() {
    let scenario = PaperScenario::with_settings(5, 1, 20.0);

    for (label, particles, point) in [
        (
            "1,024 particles @ 400 MHz",
            1024usize,
            OperatingPoint::MAX_400MHZ,
        ),
        ("1,024 particles @ 12 MHz", 1024, OperatingPoint::MIN_12MHZ),
        (
            "16,384 particles @ 400 MHz",
            16_384,
            OperatingPoint::MAX_400MHZ,
        ),
    ] {
        let mut pipeline = OnboardPipeline::new(
            PipelineConfig {
                particles,
                operating_point: point,
                ..PipelineConfig::default()
            },
            &scenario,
        )
        .expect("pipeline configuration is valid");
        let report = pipeline.fly(&scenario.sequences()[0]);
        println!("=== {label} ===");
        println!(
            "  particles stored in {}",
            if pipeline.particles_in_l2() {
                "L2"
            } else {
                "L1"
            }
        );
        println!(
            "  MCL updates applied: {} of {} steps ({} skipped by the d_xy/d_theta gate)",
            report.updates_applied,
            report.steps,
            report.steps - report.updates_applied
        );
        println!(
            "  mean on-board latency per applied update: {:.2} ms (deadline 66.7 ms, {} missed)",
            report.mean_update_latency_s * 1e3,
            report.missed_deadlines
        );
        println!(
            "  GAP9 power {:.0} mW; sensing + processing = {:.1} % of the drone's power",
            report.gap9_power_mw, report.power_share_percent
        );
        match (report.result.convergence_time_s, report.result.ate_m) {
            (Some(t), Some(ate)) => {
                println!("  localization: converged after {t:.1} s, ATE {ate:.3} m")
            }
            _ => println!("  localization: did not converge on this short flight"),
        }
        println!();
    }

    let power = PowerModel::default();
    println!("GAP9 power curve (average while running the MCL):");
    for mhz in [12.0, 50.0, 100.0, 200.0, 300.0, 400.0] {
        println!(
            "  {:>5.0} MHz -> {:>5.1} mW",
            mhz,
            power.average_power_mw(OperatingPoint::new(mhz * 1e6))
        );
    }
}
