//! Precision trade-off: fp32 vs. fp32qm vs. fp16qm on the same flight.
//!
//! Reproduces the paper's core memory claim on a single sequence: quantizing the
//! EDT map to 8 bits and storing particles in half precision shrinks the memory
//! footprint substantially without hurting localization accuracy.
//!
//! Run with `cargo run --release --example precision_tradeoff`.

use tof_mcl::core::precision::PipelineConfig;
use tof_mcl::gap9::Gap9Spec;
use tof_mcl::sim::PaperScenario;

fn main() {
    let scenario = PaperScenario::with_settings(21, 1, 30.0);
    let sequence = &scenario.sequences()[0];
    let particles = 4096;
    let map_cells = scenario.map().cell_count();
    let spec = Gap9Spec::default();

    println!(
        "Precision design space on one 30 s flight ({} particles, {} map cells)\n",
        particles, map_cells
    );
    println!(
        "{:<12} {:>10} {:>12} {:>14} {:>14} {:>10}",
        "config", "ATE (m)", "success", "particles (B)", "map (B)", "fits L1?"
    );

    for pipeline in [
        PipelineConfig::FP32,
        PipelineConfig::FP32_QM,
        PipelineConfig::FP16_QM,
    ] {
        let result = scenario.evaluate(sequence, pipeline, particles, 2);
        let footprint = pipeline.footprint();
        let particle_bytes = footprint.particle_bytes(particles);
        let map_bytes = footprint.map_bytes(map_cells);
        let fits_l1 = particle_bytes + map_bytes
            <= spec.l1_bytes - tof_mcl::gap9::MemoryPlanner::DEFAULT_L1_RESERVED_BYTES;
        println!(
            "{:<12} {:>10} {:>12} {:>14} {:>14} {:>10}",
            pipeline.name,
            result
                .ate_m
                .map(|a| format!("{a:.3}"))
                .unwrap_or_else(|| "-".into()),
            if result.success { "yes" } else { "no" },
            particle_bytes,
            map_bytes,
            if fits_l1 { "yes" } else { "no" }
        );
    }

    println!("\nThe paper's conclusion: the quantized/fp16 configuration matches the");
    println!("full-precision accuracy while reducing the map from 5 to 2 bytes per cell");
    println!("and the particles from 32 to 16 bytes each.");
}
