//! Scaled-down checks of the paper's four experimental claims.
//!
//! The full reproductions live in the `mcl-bench` binaries (one per table and
//! figure); these tests pin the *direction* of each claim at a scale small
//! enough for CI:
//!
//! 1. accurate localization with low-element-count sensors and no infrastructure,
//! 2. quantization / half precision without a significant accuracy drop,
//! 3. ~7× latency reduction from parallelization, real-time on-board,
//! 4. sensing + processing below 7 % of the drone's power.

use tof_mcl::core::precision::{MemoryFootprint, PipelineConfig};
use tof_mcl::gap9::{
    CostModel, Gap9Spec, MemoryLevel, MemoryPlanner, OperatingPoint, PowerModel, SystemPowerBudget,
};
use tof_mcl::sim::{PaperScenario, ResultAggregator};

const BEAMS: usize = 16;

#[test]
fn claim_1_localizes_accurately_without_infrastructure() {
    // Global localization on the synthetic arena is the weakest part of the
    // reproduction (see EXPERIMENTS.md "Known gaps"): the procedurally generated
    // maze is more self-similar than the paper's hand-built one, so not every
    // short run converges. The claim checked here is therefore directional: a
    // meaningful fraction of runs converges without any infrastructure, and the
    // converged runs reach the paper's accuracy level.
    let scenario = PaperScenario::with_settings(200, 2, 45.0);
    let mut agg = ResultAggregator::new();
    for sequence in scenario.sequences() {
        for seed in 1..=2 {
            agg.push(scenario.evaluate(sequence, PipelineConfig::FP32, 4096, seed));
        }
    }
    let converged = agg.results().iter().filter(|r| r.converged).count();
    assert!(
        converged >= 1,
        "no run converged at all ({} attempted)",
        agg.len()
    );
    let ate = agg.mean_ate_m().expect("at least one run converged");
    assert!(
        ate < 0.35,
        "mean ATE {ate:.3} m is far from the paper's 0.15 m"
    );
}

#[test]
fn claim_2_memory_optimizations_do_not_break_accuracy_and_halve_memory() {
    let scenario = PaperScenario::with_settings(201, 1, 30.0);
    let sequence = &scenario.sequences()[0];
    let mut full = ResultAggregator::new();
    let mut optimized = ResultAggregator::new();
    for seed in 1..=3 {
        full.push(scenario.evaluate(sequence, PipelineConfig::FP32, 2048, seed));
        optimized.push(scenario.evaluate(sequence, PipelineConfig::FP16_QM, 2048, seed));
    }
    // Accuracy: the optimized configuration stays in the same ballpark (the
    // paper actually observes it slightly *better*).
    if let (Some(a), Some(b)) = (full.mean_ate_m(), optimized.mean_ate_m()) {
        assert!(
            b < a + 0.15,
            "optimized ATE {b:.3} m much worse than fp32 {a:.3} m"
        );
    }
    // Memory: map 5 B → 2 B per cell, particles 32 B → 16 B.
    let cells = scenario.map().cell_count();
    assert_eq!(
        MemoryFootprint::full_precision().map_bytes(cells),
        5 * cells
    );
    assert_eq!(MemoryFootprint::optimized().map_bytes(cells), 2 * cells);
    assert_eq!(
        MemoryFootprint::optimized().particle_bytes(4096) * 2,
        MemoryFootprint::full_precision().particle_bytes(4096)
    );
}

#[test]
fn claim_3_parallelization_gives_about_seven_x_and_meets_real_time() {
    let cost = CostModel::default();
    let planner = MemoryPlanner::new(Gap9Spec::default(), MemoryFootprint::full_precision());
    let in_l2 = planner.place(16_384, 12_480).particles_in_l2();
    let speedup = cost.total_speedup(16_384, BEAMS, 8, in_l2);
    assert!(
        (6.0..8.0).contains(&speedup),
        "total speedup {speedup:.2} is not ≈7×"
    );
    // Real time at 15 Hz: the largest configuration at 400 MHz and the small one
    // even at 12 MHz.
    let budget = Gap9Spec::REAL_TIME_BUDGET_S;
    assert!(
        cost.update_breakdown(16_384, BEAMS, 8, true)
            .total_time_s(400e6)
            < budget
    );
    assert!(
        cost.update_breakdown(1024, BEAMS, 8, false)
            .total_time_s(12e6)
            < budget
    );
    // Latency range quoted in the abstract: 0.2–30 ms depending on particles.
    let small = cost
        .update_breakdown(64, BEAMS, 8, false)
        .total_time_s(400e6);
    assert!(small < 1e-3, "64-particle update should be well below 1 ms");
}

#[test]
fn claim_4_power_budget_stays_below_seven_percent() {
    let power = PowerModel::default();
    let gap9 = power.average_power_mw(OperatingPoint::MAX_400MHZ);
    let budget = SystemPowerBudget::paper(gap9);
    assert!(budget.sensing_and_processing_percent() <= 7.5);
    assert!(budget.payload_increase_percent() <= 7.0);
    assert!(budget.payload_increase_percent() >= 3.0);
}

#[test]
fn memory_planner_reproduces_the_l1_l2_working_points() {
    // Table I footnote: 4096 and 16384 particles live in L2, 1024 and below in L1.
    let planner = MemoryPlanner::new(Gap9Spec::default(), MemoryFootprint::full_precision());
    assert_eq!(planner.place(1024, 12_480).particles, MemoryLevel::L1);
    assert_eq!(planner.place(4096, 12_480).particles, MemoryLevel::L2);
    assert_eq!(planner.place(16_384, 12_480).particles, MemoryLevel::L2);
}
