//! Regression harness for the adaptive tempering floor
//! (`AdaptiveConfig::temper_beta_floor`).
//!
//! The known tail from the adaptive-population PR: the adaptive leg trails
//! the fixed baseline on paper-world *global* initialization. The cause is
//! wrong-mode commitment under unbounded likelihood tempering — while many
//! aliased hypotheses are live every update ESS-crashes, the solved annealing
//! exponent `β` lands deep below 1, and so little evidence flows per update
//! that the motion noise thins the cloud before the sensor can separate the
//! modes. The β floor bounds how much of each observation tempering may
//! discard; these tests capture the trailing behaviour and pin that the floor
//! recovers it without disturbing anything else.

use tof_mcl::core::precision::PipelineConfig;
use tof_mcl::core::{AdaptiveConfig, MonteCarloLocalization};
use tof_mcl::sim::{run_sequence, PaperScenario, RunnerConfig, Sequence, SequenceResult};

const PARTICLES: usize = 2048;
const FLIGHT_S: f32 = 30.0;

/// Runs one global-init flight with an explicit adaptive configuration,
/// through the same runner loop `PaperScenario::evaluate` uses.
fn run_adaptive(
    scenario: &PaperScenario,
    sequence: &Sequence,
    seed: u64,
    adaptive: AdaptiveConfig,
) -> SequenceResult {
    let config = scenario.mcl_config(PARTICLES, seed).with_adaptive(adaptive);
    let mut filter =
        MonteCarloLocalization::<f32, _>::new(config, scenario.edt_fp32().clone()).unwrap();
    filter.initialize_uniform(scenario.map(), seed).unwrap();
    run_sequence(&mut filter, sequence, &RunnerConfig::default())
}

/// The suite's adaptive configuration for this particle count, with the
/// requested tempering floor.
fn floored(floor: f32) -> AdaptiveConfig {
    PaperScenario::adaptive_config(PARTICLES).with_temper_beta_floor(floor)
}

/// Captures the PR 8 tail on a reproducible instance (paper world 100,
/// filter seed 4): the unfloored adaptive leg converges early onto a
/// degraded mode and finishes with roughly 3× the fixed baseline's ATE,
/// while a β floor of 0.5 restores parity with fixed on the same flight.
/// Every run here is bit-deterministic (counter-based RNG, schedule- and
/// backend-independent kernels), so the thresholds are exact replay pins,
/// not statistical hopes.
#[test]
fn beta_floor_recovers_the_wrong_mode_commitment_on_global_init() {
    let scenario = PaperScenario::with_settings(100, 1, FLIGHT_S);
    let sequence = &scenario.sequences()[0];
    let seed = 4;

    let fixed = scenario.evaluate(sequence, PipelineConfig::FP32, PARTICLES, seed);
    let unfloored = run_adaptive(&scenario, sequence, seed, floored(0.0));
    let with_floor = run_adaptive(&scenario, sequence, seed, floored(0.5));

    // Current (default) behaviour, kept as the regression pin: the adaptive
    // leg trails fixed on this global init — it converges (onto the wrong
    // mode, early) but tracks visibly worse for the rest of the flight.
    let fixed_ate = fixed.ate_m.expect("fixed baseline converges on this seed");
    let unfloored_ate = unfloored.ate_m.expect("unfloored adaptive converges");
    assert!(
        unfloored_ate > 2.0 * fixed_ate,
        "the PR 8 tail disappeared: unfloored adaptive ATE {unfloored_ate:.3} m \
         no longer trails fixed {fixed_ate:.3} m — update this pin (and consider \
         whether temper_beta_floor is still needed)"
    );

    // The tweak: a β floor of 0.5 keeps enough evidence flowing per update
    // that the true mode survives global init, restoring fixed-level ATE.
    let floored_ate = with_floor.ate_m.expect("floored adaptive converges");
    assert!(
        floored_ate < 1.3 * fixed_ate,
        "temper_beta_floor=0.5 no longer recovers the wrong-mode commitment: \
         ATE {floored_ate:.3} m vs fixed {fixed_ate:.3} m"
    );
    assert!(
        floored_ate < 0.5 * unfloored_ate,
        "the floor stopped helping: {floored_ate:.3} m vs unfloored {unfloored_ate:.3} m"
    );
}

/// The gate that protects the existing `BENCH_scenarios.json` wins: the
/// floor defaults to 0 (annealing unchanged bit-for-bit), and a mild floor
/// below the solved β range never binds — the whole flight replays
/// bit-identically, metrics included.
#[test]
fn default_keeps_tempering_unchanged_and_non_binding_floors_are_bit_identical() {
    assert_eq!(AdaptiveConfig::default().temper_beta_floor, 0.0);
    assert_eq!(
        PaperScenario::adaptive_config(PARTICLES).temper_beta_floor,
        0.0
    );

    let scenario = PaperScenario::with_settings(100, 1, FLIGHT_S);
    let sequence = &scenario.sequences()[0];
    // On the paper world the solved β on tempered updates stays above ~0.4,
    // so a 0.35 floor exists but never clamps: the run must be bit-identical
    // to the unfloored one (equal SequenceResult, ATE bits included).
    let unfloored = run_adaptive(&scenario, sequence, 2, floored(0.0));
    let mild = run_adaptive(&scenario, sequence, 2, floored(0.35));
    assert_eq!(
        unfloored, mild,
        "a non-binding floor must not perturb the flight"
    );
}

#[test]
#[ignore = "exploration harness: sweeps floors x seeds and prints the table"]
fn explore_floor_sweep() {
    for world_seed in [100u64, 200] {
        let scenario = PaperScenario::with_settings(world_seed, 1, FLIGHT_S);
        let sequence = &scenario.sequences()[0];
        for seed in 1..=6u64 {
            let fixed = scenario.evaluate(sequence, PipelineConfig::FP32, PARTICLES, seed);
            print!(
                "world {world_seed} seed {seed}: fixed ate={:?} conv={:?} |",
                fixed.ate_m, fixed.convergence_time_s
            );
            for floor in [0.0f32, 0.25, 0.35, 0.5] {
                let r = run_adaptive(&scenario, sequence, seed, floored(floor));
                print!(
                    " f{floor}: ate={:?} conv={:?} mp={:.0}",
                    r.ate_m, r.convergence_time_s, r.mean_particles
                );
            }
            println!();
        }
    }
}
