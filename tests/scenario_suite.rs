//! Determinism harness for the scenario suite.
//!
//! The suite's promise is that a whole-suite sweep is *reproducible
//! infrastructure*: building the worlds and stressed sequences is
//! bit-identical per seed, and a `run_suite` sweep over the full registry
//! returns bit-identical metrics for every host thread count and for both
//! kernel backends. CI additionally runs this file under
//! `MCL_TEST_WORKERS ∈ {1, 3, 8}` (which sizes the shared pool) and
//! `MCL_KERNEL_BACKEND ∈ {scalar, lanes}` (which flips every filter's
//! default), so the pins below hold on real multi-thread dispatch of either
//! backend.

use tof_mcl::core::precision::PipelineConfig;
use tof_mcl::core::KernelBackend;
use tof_mcl::sim::suite::{run_suite, ScenarioSuite, SuiteScenario};

fn build_quick_suite(seed: u64) -> Vec<SuiteScenario> {
    ScenarioSuite::quick().build_all(seed)
}

/// The acceptance pin: one sweep over the full quick suite —
/// (scenario × pipeline × particles × backend × seed) — is bit-identical
/// across worker counts, and within it the scalar and lanes halves of every
/// grid point agree exactly.
#[test]
fn full_suite_sweep_is_bit_identical_across_threads_and_backends() {
    let scenarios = build_quick_suite(11);
    assert!(
        scenarios.len() >= 6,
        "registry shrank below the suite floor"
    );
    let pipelines = [PipelineConfig::FP32, PipelineConfig::FP16_QM];
    let backends = [KernelBackend::Scalar, KernelBackend::Lanes];
    let particle_counts = [64];
    let seeds = [1];

    let reference = run_suite(
        &scenarios,
        &pipelines,
        &particle_counts,
        &backends,
        &seeds,
        1,
    );
    let runs_per_backend = pipelines.len() * particle_counts.len() * seeds.len();
    assert_eq!(
        reference.len(),
        scenarios.len() * runs_per_backend * backends.len()
    );

    // Bit-identical across host thread counts.
    for threads in [3usize, 8] {
        let swept = run_suite(
            &scenarios,
            &pipelines,
            &particle_counts,
            &backends,
            &seeds,
            threads,
        );
        assert_eq!(swept.len(), reference.len());
        for (a, b) in reference.iter().zip(swept.iter()) {
            assert_eq!(a.scenario, b.scenario);
            assert_eq!(a.outcome.job, b.outcome.job);
            assert_eq!(
                a.outcome.result, b.outcome.result,
                "threads={threads} diverged on {} {:?}",
                a.scenario, a.outcome.job
            );
        }
    }

    // Bit-identical between the scalar and lanes halves of every scenario:
    // run_suite replicates each scenario's base grid once per backend, in
    // backend order, so the two halves pair up index-wise.
    for scenario_chunk in reference.chunks(runs_per_backend * backends.len()) {
        let (scalar, lanes) = scenario_chunk.split_at(runs_per_backend);
        for (s, l) in scalar.iter().zip(lanes.iter()) {
            assert_eq!(s.outcome.job.kernel_backend, KernelBackend::Scalar);
            assert_eq!(l.outcome.job.kernel_backend, KernelBackend::Lanes);
            assert_eq!(
                s.outcome.job.with_kernel_backend(KernelBackend::Lanes),
                l.outcome.job
            );
            assert_eq!(
                s.outcome.result, l.outcome.result,
                "backends diverged on {} {:?}",
                s.scenario, s.outcome.job
            );
        }
    }
}

/// Building the suite twice from the same seed reproduces every world and
/// every stressed sequence bit for bit — scenario generation itself is part
/// of the determinism contract, not just filter execution.
#[test]
fn suite_builds_are_bit_identical_per_seed() {
    let a = build_quick_suite(23);
    let b = build_quick_suite(23);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.spec.name, y.spec.name);
        assert_eq!(
            x.scenario.maze().map(),
            y.scenario.maze().map(),
            "{}: world diverged between builds",
            x.spec.name
        );
        assert_eq!(
            x.scenario.sequences(),
            y.scenario.sequences(),
            "{}: sequences diverged between builds",
            x.spec.name
        );
    }
}

/// The stress scenarios actually carry their events into the built sequences;
/// an empty timeline here would silently turn the stress variants back into
/// nominal runs.
#[test]
fn stress_scenarios_expose_their_timelines() {
    let scenarios = build_quick_suite(5);
    let by_name = |name: &str| {
        scenarios
            .iter()
            .find(|s| s.spec.name == name)
            .unwrap_or_else(|| panic!("scenario {name} missing"))
    };
    for sequence in by_name("paper-kidnap").scenario.sequences() {
        assert_eq!(sequence.stress.kidnap_times_s.len(), 1);
    }
    for sequence in by_name("paper-dropout").scenario.sequences() {
        assert_eq!(sequence.stress.dropout_windows_s.len(), 2);
    }
    for sequence in by_name("paper").scenario.sequences() {
        assert!(sequence.stress.is_empty());
    }
}
