//! Integration tests spanning the whole workspace: map → sensors → filter →
//! metrics → platform pipeline, driven exactly like the examples and the
//! experiment binaries.

use tof_mcl::core::precision::PipelineConfig;
use tof_mcl::core::{MclConfig, MonteCarloLocalization};
use tof_mcl::platform::{OnboardPipeline, PipelineConfig as OnboardConfig};
use tof_mcl::sensor::{ObservationBatch, SensorRig};
use tof_mcl::sim::{PaperScenario, RunnerConfig};

#[test]
fn quick_scenario_end_to_end_with_the_recommended_configuration() {
    let scenario = PaperScenario::with_settings(100, 1, 30.0);
    let sequence = &scenario.sequences()[0];
    let result = scenario.evaluate(sequence, PipelineConfig::FP16_QM, 4096, 1);
    assert_eq!(result.steps, sequence.len());
    assert!(
        result.converged,
        "the recommended configuration must converge on a 30 s flight: {result:?}"
    );
    assert!(
        result.ate_m.unwrap() < 0.5,
        "ATE implausibly high: {:?}",
        result.ate_m
    );
}

#[test]
fn quantized_map_matches_full_precision_accuracy() {
    let scenario = PaperScenario::with_settings(101, 1, 40.0);
    let sequence = &scenario.sequences()[0];
    // The paper's claim (ii): quantization and half precision do not cause a
    // significant accuracy drop. Aggregate a few seeds so the comparison does
    // not hinge on a single global-localization run.
    let mut fp32_ate = Vec::new();
    let mut fp16qm_ate = Vec::new();
    for seed in 1..=3 {
        if let Some(a) = scenario
            .evaluate(sequence, PipelineConfig::FP32, 4096, seed)
            .ate_m
        {
            fp32_ate.push(a);
        }
        if let Some(b) = scenario
            .evaluate(sequence, PipelineConfig::FP16_QM, 4096, seed)
            .ate_m
        {
            fp16qm_ate.push(b);
        }
    }
    assert!(
        !fp32_ate.is_empty() || !fp16qm_ate.is_empty(),
        "no run of either precision configuration converged"
    );
    if !fp32_ate.is_empty() && !fp16qm_ate.is_empty() {
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let (a, b) = (mean(&fp32_ate), mean(&fp16qm_ate));
        assert!(
            (a - b).abs() < 0.25,
            "precision configurations diverge: fp32 {a:.3} m vs fp16qm {b:.3} m"
        );
    }
}

#[test]
fn sequential_and_parallel_filters_stay_bit_identical_over_a_flight() {
    let scenario = PaperScenario::with_settings(102, 1, 15.0);
    let sequence = &scenario.sequences()[0];
    let mut sequential = MonteCarloLocalization::<f32, _>::new(
        MclConfig::default()
            .with_particles(1024)
            .with_workers(1)
            .with_seed(9),
        scenario.edt_fp32().clone(),
    )
    .unwrap();
    let mut parallel = MonteCarloLocalization::<f32, _>::new(
        MclConfig::default()
            .with_particles(1024)
            .with_workers(8)
            .with_seed(9),
        scenario.edt_fp32().clone(),
    )
    .unwrap();
    sequential.initialize_uniform(scenario.map(), 5).unwrap();
    parallel.initialize_uniform(scenario.map(), 5).unwrap();

    for step in &sequence.steps {
        sequential.predict(step.odometry);
        parallel.predict(step.odometry);
        let beams = SensorRig::frames_to_beams(&step.frames);
        let mut obs = ObservationBatch::from_beams(&beams);
        obs.partition_in_range(sequential.config().r_max);
        let _ = sequential.update_observations(&obs).unwrap();
        let _ = parallel.update_observations(&obs).unwrap();
    }
    assert_eq!(
        sequential.particles().current(),
        parallel.particles().current(),
        "worker count must not change the filter output"
    );
    let (a, b) = (sequential.estimate(), parallel.estimate());
    assert_eq!(
        a.pose.x.to_bits(),
        b.pose.x.to_bits(),
        "worker count must not change the pose estimate"
    );
    assert_eq!(a.pose.theta.to_bits(), b.pose.theta.to_bits());
}

#[test]
fn runner_and_scenario_agree_on_the_metrics() {
    // Driving the filter manually through the runner must give the same result
    // as the scenario's evaluate() convenience wrapper.
    let scenario = PaperScenario::with_settings(103, 1, 15.0);
    let sequence = &scenario.sequences()[0];
    let via_scenario = scenario.evaluate(sequence, PipelineConfig::FP32, 512, 4);

    let mut filter = MonteCarloLocalization::<f32, _>::new(
        scenario.mcl_config(512, 4),
        scenario.edt_fp32().clone(),
    )
    .unwrap();
    filter.initialize_uniform(scenario.map(), 4).unwrap();
    let via_runner = tof_mcl::sim::run_sequence(&mut filter, sequence, &RunnerConfig::default());
    assert_eq!(via_scenario, via_runner);
}

#[test]
fn onboard_pipeline_meets_realtime_and_publishes_a_log() {
    let scenario = PaperScenario::with_settings(104, 1, 15.0);
    let mut pipeline = OnboardPipeline::new(
        OnboardConfig {
            particles: 4096,
            seed: 2,
            ..OnboardConfig::default()
        },
        &scenario,
    )
    .unwrap();
    let report = pipeline.fly(&scenario.sequences()[0]);
    assert_eq!(report.steps, scenario.sequences()[0].len());
    assert_eq!(report.missed_deadlines, 0);
    assert!(report.updates_applied > 0);
    assert_eq!(report.log.len(), report.steps);
    // The power share matches the paper's ~7 % narrative.
    assert!(report.power_share_percent < 8.0);
    // The CSV export contains one line per step plus the header.
    assert_eq!(report.log.to_csv().trim().lines().count(), report.steps + 1);
}

#[test]
fn single_sensor_configuration_is_never_better_than_two_sensors() {
    // Aggregated over a couple of seeds, the two-sensor configuration must be at
    // least as successful as the single-sensor one (claim (i) of the paper).
    let scenario = PaperScenario::with_settings(105, 1, 30.0);
    let sequence = &scenario.sequences()[0];
    let mut two = tof_mcl::sim::ResultAggregator::new();
    let mut one = tof_mcl::sim::ResultAggregator::new();
    for seed in 1..=3 {
        two.push(scenario.evaluate(sequence, PipelineConfig::FP32, 2048, seed));
        one.push(scenario.evaluate(sequence, PipelineConfig::FP32_1TOF, 2048, seed));
    }
    assert!(two.success_rate_percent() >= one.success_rate_percent());
}
