//! Determinism harness for the persistent worker pool.
//!
//! The `ClusterLayout` dispatch entry points moved from per-dispatch scoped
//! threads onto the shared persistent `mcl_core::pool::WorkerPool`. This suite
//! proves the move unobservable in the results:
//!
//! * filter particles **and** pose estimates are bit-identical across
//!   `ClusterLayout::{SINGLE, new(3), GAP9}` (plus the `MCL_TEST_WORKERS`
//!   layout the CI matrix injects) when running on the pool;
//! * every pooled dispatch entry point produces outputs bit-identical to its
//!   scoped-spawn reference twin on the same inputs;
//! * repeated dispatches on one warm pool leave no state behind — replaying
//!   the same run yields the same bits, update after update.
//!
//! The CI workflow runs `cargo test -q` with `MCL_TEST_WORKERS` ∈ {1, 3, 8},
//! which sizes the shared pool itself (see `mcl_core::pool::shared`), so these
//! properties are exercised with real 1-, 3- and 8-thread pools regardless of
//! the runner's core count.

use proptest::prelude::*;
use tof_mcl::core::kernel::{self, PosePartials, POSE_REDUCTION_BLOCK};
use tof_mcl::core::{
    pool, AdaptiveConfig, ClusterLayout, MclConfig, MonteCarloLocalization, MotionDelta,
    MotionModel, Particle, ParticleBuffer, PoseEstimate,
};
use tof_mcl::gridmap::{EuclideanDistanceField, MapBuilder, OccupancyGrid, Pose2};
use tof_mcl::sensor::{Beam, ObservationBatch};

/// The worker count the CI matrix injects, if any.
fn env_workers() -> Option<usize> {
    std::env::var("MCL_TEST_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// The layouts every determinism property is checked across: sequential, an
/// uneven three-worker split, the GAP9 cluster shape, and whatever the CI
/// matrix asked for.
fn layouts() -> Vec<ClusterLayout> {
    let mut workers = vec![1usize, 3, 8];
    if let Some(n) = env_workers() {
        if !workers.contains(&n) {
            workers.push(n);
        }
    }
    workers.into_iter().map(ClusterLayout::new).collect()
}

fn arena() -> OccupancyGrid {
    MapBuilder::new(3.0, 3.0, 0.05)
        .border_walls()
        .wall((1.5, 0.0), (1.5, 1.8))
        .build()
}

/// Deterministic synthetic observation: a ring of beams, some beyond the
/// default `r_max` truncation so the in-range partition is non-trivial.
fn synthetic_beams(case_seed: u64) -> Vec<Beam> {
    (0..12)
        .map(|k| Beam {
            azimuth_body_rad: k as f32 * core::f32::consts::TAU / 12.0,
            range_m: 0.3 + 0.12 * ((k as u64 + case_seed) % 13) as f32,
            origin_body: Pose2::default(),
        })
        .collect()
}

/// Runs one filter (given layout worker count) for `updates` gated updates and
/// returns the final particles plus the estimate.
fn run_filter(
    map: &OccupancyGrid,
    edt: &EuclideanDistanceField,
    beams: &[Beam],
    workers: usize,
    n: usize,
    seed: u64,
    updates: usize,
) -> (Vec<Particle<f32>>, PoseEstimate) {
    let config = MclConfig::default()
        .with_particles(n)
        .with_seed(seed)
        .with_workers(workers);
    let mut filter = MonteCarloLocalization::<f32, _>::new(config, edt.clone()).unwrap();
    filter.initialize_uniform(map, seed).unwrap();
    let delta = MotionDelta::new(0.12, 0.01, 0.06);
    let mut observations = ObservationBatch::from_beams(beams);
    observations.partition_in_range(filter.config().r_max);
    for _ in 0..updates {
        filter.predict(delta);
        let outcome = filter.update_observations(&observations).unwrap();
        assert!(outcome.is_applied(), "gate must be open every update");
    }
    (filter.particles().to_particles(), filter.estimate())
}

fn assert_estimates_bit_equal(a: &PoseEstimate, b: &PoseEstimate, context: &str) {
    assert_eq!(a.pose.x.to_bits(), b.pose.x.to_bits(), "{context}: x");
    assert_eq!(a.pose.y.to_bits(), b.pose.y.to_bits(), "{context}: y");
    assert_eq!(
        a.pose.theta.to_bits(),
        b.pose.theta.to_bits(),
        "{context}: theta"
    );
    assert_eq!(
        a.position_std_m.to_bits(),
        b.position_std_m.to_bits(),
        "{context}: position_std"
    );
    assert_eq!(
        a.yaw_std_rad.to_bits(),
        b.yaw_std_rad.to_bits(),
        "{context}: yaw_std"
    );
    assert_eq!(a.neff.to_bits(), b.neff.to_bits(), "{context}: neff");
}

fn particles(n: usize) -> ParticleBuffer<f32> {
    (0..n)
        .map(|i| {
            Particle::from_pose(
                &Pose2::new(
                    1.0 + (i % 13) as f32 * 0.05,
                    1.0 + (i % 7) as f32 * 0.04,
                    (i % 17) as f32 * 0.3,
                ),
                (1 + i % 5) as f32 / n as f32,
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Particles and pose estimates are bit-identical across worker layouts on
    /// the pool, and across repeated runs on the same warm pool (no state
    /// leaks from one dispatch into the next).
    #[test]
    fn pooled_filter_is_bit_identical_across_layouts_and_reruns(
        seed in 0u64..300,
        n in 16usize..160,
    ) {
        let map = arena();
        let edt = EuclideanDistanceField::compute(&map, 1.5);
        let beams = synthetic_beams(seed);
        let mut reference: Option<(Vec<Particle<f32>>, PoseEstimate)> = None;
        for layout in layouts() {
            let workers = layout.workers();
            // Two identical runs back to back: by the time the second one
            // dispatches, the pool is warm from the first — any cross-update
            // or cross-run state leakage would show up as diverging bits.
            let first = run_filter(&map, &edt, &beams, workers, n, seed, 3);
            let second = run_filter(&map, &edt, &beams, workers, n, seed, 3);
            prop_assert_eq!(
                &first.0, &second.0,
                "workers={} rerun diverged", workers
            );
            assert_estimates_bit_equal(
                &first.1,
                &second.1,
                &format!("workers={workers} rerun"),
            );
            match &reference {
                None => reference = Some(first),
                Some((particles, estimate)) => {
                    prop_assert_eq!(
                        particles, &first.0,
                        "workers={} diverged from the single-worker particles", workers
                    );
                    assert_estimates_bit_equal(
                        estimate,
                        &first.1,
                        &format!("workers={workers} vs single"),
                    );
                }
            }
        }
    }

    /// The motion kernel dispatched on the pool matches the scoped-spawn
    /// reference bit for bit, for every layout.
    #[test]
    fn pooled_motion_kernel_matches_the_scoped_reference(
        seed in 0u64..500,
        n in 1usize..400,
    ) {
        let model = MotionModel::new([0.05, 0.05, 0.02]);
        let delta = MotionDelta::new(0.1, 0.02, 0.05);
        for layout in layouts() {
            let mut pooled = particles(n);
            layout.for_each_split(pooled.as_mut_slice(), |start, chunk| {
                kernel::motion_predict(chunk, &model, &delta, seed, 2, start as u64);
            });
            let mut scoped = particles(n);
            layout.for_each_split_scoped(scoped.as_mut_slice(), |start, chunk| {
                kernel::motion_predict(chunk, &model, &delta, seed, 2, start as u64);
            });
            prop_assert_eq!(
                pooled.to_particles(),
                scoped.to_particles(),
                "workers={}", layout.workers()
            );
        }
    }

    /// Every dispatch entry point agrees with its scoped twin on random data:
    /// mutation (`for_each_split`), per-chunk results (`map_split`),
    /// fixed-block reduction (`map_index_blocks`) and plan-shaped ranges
    /// (`for_each_range` via `scatter_resample`).
    #[test]
    fn every_entry_point_matches_its_scoped_twin(
        values in prop::collection::vec(0u64..u64::MAX, 1..300),
        range_sizes in prop::collection::vec(0usize..40, 1..12),
    ) {
        for layout in layouts() {
            // for_each_split: index-keyed mutation.
            let mutate = |start: usize, slice: &mut [u64]| {
                for (i, v) in slice.iter_mut().enumerate() {
                    *v = v.wrapping_mul(6364136223846793005)
                        .wrapping_add((start + i) as u64);
                }
            };
            let mut pooled = values.clone();
            layout.for_each_split(pooled.as_mut_slice(), mutate);
            let mut scoped = values.clone();
            layout.for_each_split_scoped(scoped.as_mut_slice(), mutate);
            prop_assert_eq!(&pooled, &scoped);

            // map_split: per-chunk f64 sums, order-sensitive fold.
            let sum = |_: usize, chunk: &[u64]| {
                chunk.iter().map(|&v| (v % 1024) as f64).sum::<f64>()
            };
            let a = layout.map_split(values.as_slice(), sum);
            let b = layout.map_split_scoped(values.as_slice(), sum);
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }

            // map_index_blocks: fixed-block partial reduction.
            let reduce = |s: usize, e: usize| {
                values[s..e].iter().map(|&v| (v % 4096) as f64).sum::<f64>()
            };
            let a = layout.map_index_blocks(values.len(), 32, reduce);
            let b = layout.map_index_blocks_scoped(values.len(), 32, reduce);
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }

        // for_each_range / scatter_resample on a random tiling (zero-length
        // ranges included).
        let mut ranges = Vec::with_capacity(range_sizes.len());
        let mut total = 0usize;
        for &size in &range_sizes {
            ranges.push((total, total + size));
            total += size;
        }
        let source: Vec<u64> = (0..total as u64).map(|i| i * 31).collect();
        let indices: Vec<usize> = (0..total).map(|i| (i * 13) % total.max(1)).collect();
        for layout in layouts() {
            let mut pooled = vec![0u64; total];
            layout.scatter_resample(&source, &mut pooled, &indices, &ranges);
            let mut scoped = vec![0u64; total];
            layout.scatter_resample_scoped(&source, &mut scoped, &indices, &ranges);
            prop_assert_eq!(&pooled, &scoped, "workers={}", layout.workers());
        }
    }
}

/// The pose-reduction kernel keeps returning the same bits over many repeated
/// dispatches on the warm shared pool — the "no cross-dispatch state" check at
/// kernel granularity.
#[test]
fn repeated_pose_reductions_on_the_warm_pool_are_stable() {
    let buffer = particles(3000);
    let view = buffer.as_slice();
    let slice_of = |start: usize, end: usize| {
        let (_, tail) = view.split_at(start);
        let (mid, _) = tail.split_at(end - start);
        mid
    };
    for layout in layouts() {
        let reference = kernel::pose_estimate(&buffer, &layout);
        for round in 0..20 {
            let again = kernel::pose_estimate(&buffer, &layout);
            assert_estimates_bit_equal(
                &reference,
                &again,
                &format!("workers={} round={round}", layout.workers()),
            );
        }
        // The partials behind the estimate are block-order stable too.
        let partials = layout.map_index_blocks(buffer.len(), POSE_REDUCTION_BLOCK, |start, end| {
            PosePartials::accumulate(slice_of(start, end))
        });
        assert_eq!(partials.len(), buffer.len().div_ceil(POSE_REDUCTION_BLOCK));
    }
}

/// Runs one KLD-adaptive filter and returns the final particles, the
/// estimate and the per-update population trajectory.
fn run_adaptive_filter(
    map: &OccupancyGrid,
    edt: &EuclideanDistanceField,
    beams: &[Beam],
    workers: usize,
    n: usize,
    seed: u64,
) -> (Vec<Particle<f32>>, PoseEstimate, Vec<usize>) {
    let config = MclConfig::default()
        .with_particles(n)
        .with_seed(seed)
        .with_workers(workers)
        .with_adaptive(AdaptiveConfig::enabled().with_population_range(48, 2 * n));
    let mut filter = MonteCarloLocalization::<f32, _>::new(config, edt.clone()).unwrap();
    filter.initialize_uniform(map, seed).unwrap();
    let delta = MotionDelta::new(0.12, 0.01, 0.06);
    let mut observations = ObservationBatch::from_beams(beams);
    observations.partition_in_range(filter.config().r_max);
    let mut populations = Vec::new();
    for _ in 0..6 {
        filter.predict(delta);
        let outcome = filter.update_observations(&observations).unwrap();
        assert!(outcome.is_applied(), "gate must be open every update");
        populations.push(filter.particles().len());
    }
    (
        filter.particles().to_particles(),
        filter.estimate(),
        populations,
    )
}

/// The adaptive filter re-sizes its particle buffers mid-run, so every update
/// dispatches a *different* plan geometry onto the warm pool. Particles,
/// estimates and the population trajectory itself must stay bit-identical
/// across worker layouts and across reruns on the same warm pool.
#[test]
fn adaptive_filter_is_bit_identical_across_layouts_and_warm_pool_reruns() {
    let map = arena();
    let edt = EuclideanDistanceField::compute(&map, 1.5);
    for (seed, n) in [(9u64, 128usize), (33, 300)] {
        let beams = synthetic_beams(seed);
        let mut reference: Option<(Vec<Particle<f32>>, PoseEstimate, Vec<usize>)> = None;
        for layout in layouts() {
            let workers = layout.workers();
            let first = run_adaptive_filter(&map, &edt, &beams, workers, n, seed);
            // The run must actually change size, or this collapses into the
            // fixed-size property above.
            assert!(
                first.2.iter().any(|&p| p != n),
                "seed={seed}: population never left {n}: {:?}",
                first.2
            );
            // Second run on the now-warm pool: no cross-run state may leak
            // through the size-changing dispatches.
            let second = run_adaptive_filter(&map, &edt, &beams, workers, n, seed);
            assert_eq!(first.0, second.0, "workers={workers} rerun diverged");
            assert_eq!(
                first.2, second.2,
                "workers={workers} rerun population trajectory diverged"
            );
            assert_estimates_bit_equal(
                &first.1,
                &second.1,
                &format!("adaptive workers={workers} rerun"),
            );
            match &reference {
                None => reference = Some(first),
                Some((particles, estimate, populations)) => {
                    assert_eq!(
                        populations, &first.2,
                        "workers={workers} population trajectory diverged from single-worker"
                    );
                    assert_eq!(
                        particles, &first.0,
                        "workers={workers} diverged from the single-worker particles"
                    );
                    assert_estimates_bit_equal(
                        estimate,
                        &first.1,
                        &format!("adaptive workers={workers} vs single"),
                    );
                }
            }
        }
    }
}

/// The shared pool is sized by `MCL_TEST_WORKERS` when the CI matrix sets it.
#[test]
fn shared_pool_honors_the_test_workers_override() {
    match env_workers() {
        Some(n) => assert_eq!(pool::shared().workers(), n.min(64)),
        None => assert!(pool::shared().workers() >= 1),
    }
}
