//! Property-based tests (proptest) on the core data structures and invariants.
//!
//! These complement the unit tests with randomized coverage of the numeric
//! primitives (binary16, quantization, angles), the geometry, the resampling
//! schemes, the distance transform and the memory accounting.

use proptest::prelude::*;
use tof_mcl::core::precision::MemoryFootprint;
use tof_mcl::core::{
    systematic_resample, BeamEndPointModel, MclConfig, MonteCarloLocalization, MotionDelta,
    MotionModel, PartialSumResampler, Particle, ParticleSet,
};
use tof_mcl::gridmap::{
    CellIndex, CellState, DistanceField, EuclideanDistanceField, MapBuilder, OccupancyGrid, Point2,
    Pose2,
};
use tof_mcl::num::{angular_difference, normalize_angle, Quantizer, F16};
use tof_mcl::sensor::{raycast_distance, Beam, ObservationBatch};

/// Independent restatement of the batched beam-end-point log-likelihood
/// (Eq. 1 with the beam end point resolved in the body frame and rotated by
/// the particle yaw — the op order `BeamBatch` + `batch_log_likelihood`
/// promise). Deliberately reimplemented from `&[Beam]` without touching
/// `BeamBatch`, so a regression in the library's batch path cannot hide on
/// both sides of the bit-identity assertion.
fn reference_batch_log_likelihood(
    field: &EuclideanDistanceField,
    x: f32,
    y: f32,
    theta: f32,
    beams: &[Beam],
    sigma_obs: f32,
    r_max: f32,
) -> f32 {
    let log_normalizer = -(core::f32::consts::TAU.sqrt() * sigma_obs).ln();
    let (sin_t, cos_t) = theta.sin_cos();
    let mut log_sum = 0.0f32;
    let mut used = 0usize;
    for beam in beams {
        if beam.range_m >= r_max {
            continue;
        }
        let (sin_az, cos_az) = beam.azimuth_body_rad.sin_cos();
        let bx = beam.origin_body.x + cos_az * beam.range_m;
        let by = beam.origin_body.y + sin_az * beam.range_m;
        let ex = x + cos_t * bx - sin_t * by;
        let ey = y + sin_t * bx + cos_t * by;
        let edt = field.distance_at_world(ex, ey).min(r_max);
        log_sum += log_normalizer - (edt * edt) / (2.0 * sigma_obs * sigma_obs);
        used += 1;
    }
    if used == 0 {
        return 0.0;
    }
    log_sum
}

/// One full MCL iteration on array-of-structs storage, sequentially, with the
/// seed repository's per-particle algorithm (the observation term restated by
/// [`reference_batch_log_likelihood`], since the batch path hoists the beam
/// trigonometry by design): the reference the SoA + kernel filter must
/// reproduce bit for bit (see `soa_filter_is_bit_identical_…` below).
#[allow(clippy::too_many_arguments)] // mirrors the filter's full per-update state
fn reference_aos_iteration(
    particles: &mut [Particle<f32>],
    motion: &MotionModel,
    observation: &BeamEndPointModel,
    field: &EuclideanDistanceField,
    beams: &[Beam],
    delta: &MotionDelta,
    seed: u64,
    update_index: u64,
) {
    // 1. Prediction: one counter-RNG stream per (seed, update, particle).
    for (i, p) in particles.iter_mut().enumerate() {
        *p = motion.sample(p, delta, seed, update_index, i as u64);
    }
    // 2. Correction: batched beam-end-point log-likelihoods, rescaled by the
    // set-wide maximum before exponentiation.
    let logs: Vec<f32> = particles
        .iter()
        .map(|p| {
            reference_batch_log_likelihood(
                field,
                p.x,
                p.y,
                p.theta,
                beams,
                observation.sigma_obs(),
                observation.r_max(),
            )
        })
        .collect();
    let max_log = logs.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
    for (p, &log_lik) in particles.iter_mut().zip(logs.iter()) {
        p.weight *= (log_lik - max_log).exp();
    }
    // 3. Normalization (sequential f32 sum, like ParticleSet::normalize_weights)
    // and systematic resampling with the per-update wheel offset.
    let sum: f32 = particles.iter().map(|p| p.weight).sum();
    if sum <= f32::MIN_POSITIVE {
        let uniform = 1.0 / particles.len().max(1) as f32;
        for p in particles.iter_mut() {
            p.weight = uniform;
        }
    } else {
        for p in particles.iter_mut() {
            p.weight /= sum;
        }
    }
    let mut offset_rng = tof_mcl::core::rng::CounterRng::for_update(seed, update_index);
    let offset = offset_rng.uniform();
    let weights: Vec<f32> = particles.iter().map(|p| p.weight).collect();
    let picks = systematic_resample(&weights, offset);
    let previous = particles.to_vec();
    let uniform = 1.0 / particles.len() as f32;
    for (slot, &src) in picks.iter().enumerate() {
        particles[slot] = previous[src];
        particles[slot].weight = uniform;
    }
}

/// Deterministic synthetic observation: a ring of beams, some beyond the
/// model's `r_max` truncation so the skip path is exercised.
fn synthetic_beams(case_seed: u64) -> Vec<Beam> {
    (0..12)
        .map(|k| Beam {
            azimuth_body_rad: k as f32 * core::f32::consts::TAU / 12.0,
            range_m: 0.3 + 0.12 * ((k as u64 + case_seed) % 13) as f32,
            origin_body: Pose2::default(),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// binary16 round-trips within the documented relative error bound for all
    /// values in the normal range.
    #[test]
    fn f16_roundtrip_error_is_bounded(value in 7e-5f32..60000.0) {
        let roundtrip = F16::from_f32(value).to_f32();
        let rel = (roundtrip - value).abs() / value;
        prop_assert!(rel <= F16::RELATIVE_ERROR_BOUND, "rel error {rel} at {value}");
    }

    /// Negating a binary16 value only flips its sign.
    #[test]
    fn f16_negation_is_exact(value in -60000.0f32..60000.0) {
        let x = F16::from_f32(value);
        prop_assert_eq!((-x).to_f32(), -x.to_f32());
    }

    /// Quantization reconstructs within half a step for in-range values.
    #[test]
    fn quantizer_roundtrip_is_within_half_step(
        max in 0.1f32..10.0,
        frac in 0.0f32..1.0,
    ) {
        let q = Quantizer::new(max).unwrap();
        let value = frac * max;
        let rec = q.dequantize(q.quantize(value));
        prop_assert!((rec - value).abs() <= q.max_error() + 1e-5);
    }

    /// Angle normalization always lands in [0, 2π) and preserves the direction.
    #[test]
    fn normalized_angles_are_canonical(angle in -100.0f32..100.0) {
        let n = normalize_angle(angle);
        prop_assert!((0.0..std::f32::consts::TAU).contains(&n));
        prop_assert!(angular_difference(n, angle).abs() < 1e-3);
    }

    /// The angular difference is the shortest signed rotation.
    #[test]
    fn angular_difference_is_bounded_by_pi(a in -10.0f32..10.0, b in -10.0f32..10.0) {
        let d = angular_difference(a, b);
        prop_assert!(d > -std::f32::consts::PI - 1e-5);
        prop_assert!(d <= std::f32::consts::PI + 1e-5);
        // Rotating b by d reaches a (mod 2π).
        prop_assert!(angular_difference(a, b + d).abs() < 1e-3);
    }

    /// Composing a pose with a local pose and expressing the result relative to
    /// the original recovers the local pose.
    #[test]
    fn pose_compose_relative_roundtrip(
        x in -10.0f32..10.0, y in -10.0f32..10.0, t in -7.0f32..7.0,
        lx in -2.0f32..2.0, ly in -2.0f32..2.0, lt in -3.0f32..3.0,
    ) {
        let parent = Pose2::new(x, y, t);
        let local = Pose2::new(lx, ly, lt);
        let world = parent.compose(&local);
        let back = parent.relative_to(&world);
        prop_assert!((back.x - local.x).abs() < 1e-3);
        prop_assert!((back.y - local.y).abs() < 1e-3);
        prop_assert!(angular_difference(back.theta, local.theta).abs() < 1e-3);
    }

    /// Systematic resampling returns one valid, non-decreasing source index per
    /// slot, and a particle holding half the weight receives about half the slots.
    #[test]
    fn systematic_resampling_invariants(
        weights in prop::collection::vec(0.0f32..1.0, 2..300),
        offset in 0.0f32..0.999,
        heavy in any::<prop::sample::Index>(),
    ) {
        let mut weights = weights;
        let heavy = heavy.index(weights.len());
        let others: f32 = weights.iter().enumerate()
            .filter(|(i, _)| *i != heavy)
            .map(|(_, w)| *w)
            .sum();
        weights[heavy] = others.max(0.01); // the heavy particle holds ~half the mass
        let picks = systematic_resample(&weights, offset);
        prop_assert_eq!(picks.len(), weights.len());
        prop_assert!(picks.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(picks.iter().all(|&i| i < weights.len()));
        let copies = picks.iter().filter(|&&i| i == heavy).count();
        let expected = weights.len() as f32 * weights[heavy]
            / (weights[heavy] + others.max(0.0));
        prop_assert!((copies as f32 - expected).abs() <= 1.0 + 1e-3);
    }

    /// The per-chunk partial-sum decomposition selects exactly the same particles
    /// as the sequential wheel, for any worker count.
    #[test]
    fn partial_sum_resampler_matches_sequential(
        weights in prop::collection::vec(1e-6f32..1.0, 2..400),
        offset in 0.0f32..0.999,
        workers in 1usize..12,
    ) {
        let sequential = systematic_resample(&weights, offset);
        let plan = PartialSumResampler::new(workers).plan(&weights, offset);
        prop_assert_eq!(&plan.indices, &sequential);
        prop_assert_eq!(plan.per_worker_draws().iter().sum::<usize>(), weights.len());
    }

    /// The fast EDT equals the brute-force distance (truncated) on random maps.
    #[test]
    fn edt_matches_brute_force(
        occupied in prop::collection::vec((0usize..20, 0usize..15), 1..25),
    ) {
        let mut map = OccupancyGrid::new(1.0, 0.75, 0.05).unwrap();
        for (col, row) in &occupied {
            map.set(CellIndex::new(*col, *row), CellState::Occupied).unwrap();
        }
        let rmax = 1.5f32;
        let edt = EuclideanDistanceField::compute(&map, rmax);
        for idx in map.indices() {
            let brute = occupied.iter().map(|(c, r)| {
                let dc = idx.col as f32 - *c as f32;
                let dr = idx.row as f32 - *r as f32;
                (dc * dc + dr * dr).sqrt() * 0.05
            }).fold(rmax, f32::min);
            prop_assert!((edt.distance_at(idx) - brute).abs() < 1e-3);
        }
    }

    /// Quantizing a distance field never changes a value by more than the
    /// quantization error, and out-of-range lookups return rmax.
    #[test]
    fn quantized_edt_stays_close(seed in 0u64..50) {
        let maze = tof_mcl::gridmap::DroneMaze::generate(tof_mcl::gridmap::MazeConfig {
            width_m: 2.0,
            height_m: 2.0,
            seed,
            ..Default::default()
        });
        let edt = EuclideanDistanceField::compute(maze.map(), 1.5);
        let quantized = edt.quantize();
        for idx in maze.map().indices().step_by(7) {
            let err = (edt.distance_at(idx) - quantized.distance_at(idx)).abs();
            prop_assert!(err <= quantized.quantization_error() + 1e-6);
        }
        prop_assert_eq!(quantized.distance_at(CellIndex::new(9999, 0)), 1.5);
    }

    /// Ray casting never reports more than the requested range and, in a closed
    /// room, always hits an occupied cell within the diagonal.
    #[test]
    fn raycast_respects_range_and_geometry(
        x in 0.3f32..3.7, y in 0.3f32..3.7, angle in 0.0f32..std::f32::consts::TAU, range in 0.2f32..6.0,
    ) {
        let map = tof_mcl::gridmap::MapBuilder::new(4.0, 4.0, 0.05).border_walls().build();
        let d = raycast_distance(&map, Point2::new(x, y), angle, range);
        prop_assert!(d <= range + 1e-6);
        // With an unbounded range the border is always hit within the diagonal.
        let d_full = raycast_distance(&map, Point2::new(x, y), angle, 20.0);
        prop_assert!(d_full <= (32.0f32).sqrt() + 0.1);
    }

    /// Memory accounting: whatever `max_particles` returns actually fits in the
    /// budget, and one more particle does not.
    #[test]
    fn memory_footprint_max_particles_is_tight(
        budget in 10_000usize..2_000_000,
        cells in 100usize..50_000,
        optimized in any::<bool>(),
    ) {
        let footprint = if optimized {
            MemoryFootprint::optimized()
        } else {
            MemoryFootprint::full_precision()
        };
        match footprint.max_particles(budget, cells) {
            Some(n) => {
                prop_assert!(footprint.total_bytes(n, cells) <= budget);
                prop_assert!(footprint.total_bytes(n + 1, cells) > budget);
            }
            None => prop_assert!(footprint.map_bytes(cells) > budget),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The SoA + kernel filter is bit-identical to the sequential
    /// array-of-structs reference (`reference_aos_iteration`, the seed
    /// repository's per-particle algorithm) for every seed, particle count and
    /// `ClusterLayout` worker count — and the pose estimates agree bit for bit
    /// across worker counts, which is the determinism `parallel.rs` promises.
    #[test]
    fn soa_filter_is_bit_identical_to_the_aos_reference(
        seed in 0u64..500,
        n in 16usize..180,
    ) {
        let map = MapBuilder::new(3.0, 3.0, 0.05)
            .border_walls()
            .wall((1.5, 0.0), (1.5, 1.8))
            .build();
        let edt = EuclideanDistanceField::compute(&map, 1.5);
        let beams = synthetic_beams(seed);
        // Gate-passing odometry increment (translation 0.12 ≥ d_xy = 0.1).
        let delta = MotionDelta::new(0.12, 0.01, 0.06);

        // Reference: AoS storage, sequential execution, seed per-particle math.
        let motion = MotionModel::new(MclConfig::default().sigma_odom);
        let observation = BeamEndPointModel::new(
            MclConfig::default().sigma_obs,
            MclConfig::default().r_max,
        );
        let mut init = ParticleSet::<f32>::with_capacity(n).unwrap();
        init.initialize_uniform(n, &map, seed).unwrap();
        let mut reference = init.to_particles();
        for update in 1..=3u64 {
            reference_aos_iteration(
                &mut reference, &motion, &observation, &edt, &beams, &delta, seed, update,
            );
        }

        // The SoA filter on three layouts: sequential, uneven (3), GAP9 (8).
        let mut estimates = Vec::new();
        for workers in [1usize, 3, 8] {
            let config = MclConfig::default()
                .with_particles(n)
                .with_seed(seed)
                .with_workers(workers);
            let mut filter =
                MonteCarloLocalization::<f32, _>::new(config, edt.clone()).unwrap();
            filter.initialize_uniform(&map, seed).unwrap();
            for _ in 0..3 {
                filter.predict(delta);
                let mut obs = ObservationBatch::from_beams(&beams);
                obs.partition_in_range(filter.config().r_max);
                let outcome = filter.update_observations(&obs).unwrap();
                prop_assert!(outcome.is_applied());
            }
            prop_assert_eq!(
                filter.particles().to_particles(),
                reference.clone(),
                "workers={} diverged from the AoS reference", workers
            );
            estimates.push(filter.estimate());
        }
        for estimate in &estimates[1..] {
            prop_assert_eq!(
                estimates[0].pose.x.to_bits(), estimate.pose.x.to_bits(),
                "estimate x differs across worker counts"
            );
            prop_assert_eq!(estimates[0].pose.y.to_bits(), estimate.pose.y.to_bits());
            prop_assert_eq!(
                estimates[0].pose.theta.to_bits(), estimate.pose.theta.to_bits()
            );
            prop_assert_eq!(
                estimates[0].position_std_m.to_bits(), estimate.position_std_m.to_bits()
            );
            prop_assert_eq!(estimates[0].neff.to_bits(), estimate.neff.to_bits());
        }
    }
}
