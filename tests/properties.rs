//! Property-based tests (proptest) on the core data structures and invariants.
//!
//! These complement the unit tests with randomized coverage of the numeric
//! primitives (binary16, quantization, angles), the geometry, the resampling
//! schemes, the distance transform and the memory accounting.

use proptest::prelude::*;
use tof_mcl::core::precision::MemoryFootprint;
use tof_mcl::core::{systematic_resample, PartialSumResampler};
use tof_mcl::gridmap::{
    CellIndex, CellState, DistanceField, EuclideanDistanceField, OccupancyGrid, Point2, Pose2,
};
use tof_mcl::num::{angular_difference, normalize_angle, Quantizer, F16};
use tof_mcl::sensor::raycast_distance;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// binary16 round-trips within the documented relative error bound for all
    /// values in the normal range.
    #[test]
    fn f16_roundtrip_error_is_bounded(value in 7e-5f32..60000.0) {
        let roundtrip = F16::from_f32(value).to_f32();
        let rel = (roundtrip - value).abs() / value;
        prop_assert!(rel <= F16::RELATIVE_ERROR_BOUND, "rel error {rel} at {value}");
    }

    /// Negating a binary16 value only flips its sign.
    #[test]
    fn f16_negation_is_exact(value in -60000.0f32..60000.0) {
        let x = F16::from_f32(value);
        prop_assert_eq!((-x).to_f32(), -x.to_f32());
    }

    /// Quantization reconstructs within half a step for in-range values.
    #[test]
    fn quantizer_roundtrip_is_within_half_step(
        max in 0.1f32..10.0,
        frac in 0.0f32..1.0,
    ) {
        let q = Quantizer::new(max).unwrap();
        let value = frac * max;
        let rec = q.dequantize(q.quantize(value));
        prop_assert!((rec - value).abs() <= q.max_error() + 1e-5);
    }

    /// Angle normalization always lands in [0, 2π) and preserves the direction.
    #[test]
    fn normalized_angles_are_canonical(angle in -100.0f32..100.0) {
        let n = normalize_angle(angle);
        prop_assert!((0.0..std::f32::consts::TAU).contains(&n));
        prop_assert!(angular_difference(n, angle).abs() < 1e-3);
    }

    /// The angular difference is the shortest signed rotation.
    #[test]
    fn angular_difference_is_bounded_by_pi(a in -10.0f32..10.0, b in -10.0f32..10.0) {
        let d = angular_difference(a, b);
        prop_assert!(d > -std::f32::consts::PI - 1e-5);
        prop_assert!(d <= std::f32::consts::PI + 1e-5);
        // Rotating b by d reaches a (mod 2π).
        prop_assert!(angular_difference(a, b + d).abs() < 1e-3);
    }

    /// Composing a pose with a local pose and expressing the result relative to
    /// the original recovers the local pose.
    #[test]
    fn pose_compose_relative_roundtrip(
        x in -10.0f32..10.0, y in -10.0f32..10.0, t in -7.0f32..7.0,
        lx in -2.0f32..2.0, ly in -2.0f32..2.0, lt in -3.0f32..3.0,
    ) {
        let parent = Pose2::new(x, y, t);
        let local = Pose2::new(lx, ly, lt);
        let world = parent.compose(&local);
        let back = parent.relative_to(&world);
        prop_assert!((back.x - local.x).abs() < 1e-3);
        prop_assert!((back.y - local.y).abs() < 1e-3);
        prop_assert!(angular_difference(back.theta, local.theta).abs() < 1e-3);
    }

    /// Systematic resampling returns one valid, non-decreasing source index per
    /// slot, and a particle holding half the weight receives about half the slots.
    #[test]
    fn systematic_resampling_invariants(
        weights in prop::collection::vec(0.0f32..1.0, 2..300),
        offset in 0.0f32..0.999,
        heavy in any::<prop::sample::Index>(),
    ) {
        let mut weights = weights;
        let heavy = heavy.index(weights.len());
        let others: f32 = weights.iter().enumerate()
            .filter(|(i, _)| *i != heavy)
            .map(|(_, w)| *w)
            .sum();
        weights[heavy] = others.max(0.01); // the heavy particle holds ~half the mass
        let picks = systematic_resample(&weights, offset);
        prop_assert_eq!(picks.len(), weights.len());
        prop_assert!(picks.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(picks.iter().all(|&i| i < weights.len()));
        let copies = picks.iter().filter(|&&i| i == heavy).count();
        let expected = weights.len() as f32 * weights[heavy]
            / (weights[heavy] + others.max(0.0));
        prop_assert!((copies as f32 - expected).abs() <= 1.0 + 1e-3);
    }

    /// The per-chunk partial-sum decomposition selects exactly the same particles
    /// as the sequential wheel, for any worker count.
    #[test]
    fn partial_sum_resampler_matches_sequential(
        weights in prop::collection::vec(1e-6f32..1.0, 2..400),
        offset in 0.0f32..0.999,
        workers in 1usize..12,
    ) {
        let sequential = systematic_resample(&weights, offset);
        let plan = PartialSumResampler::new(workers).plan(&weights, offset);
        prop_assert_eq!(&plan.indices, &sequential);
        prop_assert_eq!(plan.per_worker_draws().iter().sum::<usize>(), weights.len());
    }

    /// The fast EDT equals the brute-force distance (truncated) on random maps.
    #[test]
    fn edt_matches_brute_force(
        occupied in prop::collection::vec((0usize..20, 0usize..15), 1..25),
    ) {
        let mut map = OccupancyGrid::new(1.0, 0.75, 0.05).unwrap();
        for (col, row) in &occupied {
            map.set(CellIndex::new(*col, *row), CellState::Occupied).unwrap();
        }
        let rmax = 1.5f32;
        let edt = EuclideanDistanceField::compute(&map, rmax);
        for idx in map.indices() {
            let brute = occupied.iter().map(|(c, r)| {
                let dc = idx.col as f32 - *c as f32;
                let dr = idx.row as f32 - *r as f32;
                (dc * dc + dr * dr).sqrt() * 0.05
            }).fold(rmax, f32::min);
            prop_assert!((edt.distance_at(idx) - brute).abs() < 1e-3);
        }
    }

    /// Quantizing a distance field never changes a value by more than the
    /// quantization error, and out-of-range lookups return rmax.
    #[test]
    fn quantized_edt_stays_close(seed in 0u64..50) {
        let maze = tof_mcl::gridmap::DroneMaze::generate(tof_mcl::gridmap::MazeConfig {
            width_m: 2.0,
            height_m: 2.0,
            seed,
            ..Default::default()
        });
        let edt = EuclideanDistanceField::compute(maze.map(), 1.5);
        let quantized = edt.quantize();
        for idx in maze.map().indices().step_by(7) {
            let err = (edt.distance_at(idx) - quantized.distance_at(idx)).abs();
            prop_assert!(err <= quantized.quantization_error() + 1e-6);
        }
        prop_assert_eq!(quantized.distance_at(CellIndex::new(9999, 0)), 1.5);
    }

    /// Ray casting never reports more than the requested range and, in a closed
    /// room, always hits an occupied cell within the diagonal.
    #[test]
    fn raycast_respects_range_and_geometry(
        x in 0.3f32..3.7, y in 0.3f32..3.7, angle in 0.0f32..std::f32::consts::TAU, range in 0.2f32..6.0,
    ) {
        let map = tof_mcl::gridmap::MapBuilder::new(4.0, 4.0, 0.05).border_walls().build();
        let d = raycast_distance(&map, Point2::new(x, y), angle, range);
        prop_assert!(d <= range + 1e-6);
        // With an unbounded range the border is always hit within the diagonal.
        let d_full = raycast_distance(&map, Point2::new(x, y), angle, 20.0);
        prop_assert!(d_full <= (32.0f32).sqrt() + 0.1);
    }

    /// Memory accounting: whatever `max_particles` returns actually fits in the
    /// budget, and one more particle does not.
    #[test]
    fn memory_footprint_max_particles_is_tight(
        budget in 10_000usize..2_000_000,
        cells in 100usize..50_000,
        optimized in any::<bool>(),
    ) {
        let footprint = if optimized {
            MemoryFootprint::optimized()
        } else {
            MemoryFootprint::full_precision()
        };
        match footprint.max_particles(budget, cells) {
            Some(n) => {
                prop_assert!(footprint.total_bytes(n, cells) <= budget);
                prop_assert!(footprint.total_bytes(n + 1, cells) > budget);
            }
            None => prop_assert!(footprint.map_bytes(cells) > budget),
        }
    }
}
