//! Fleet server fault injection: hostile bytes, dying connections, slow
//! consumers and registration storms must degrade *per connection* — the
//! shard pool never panics, other connections never stall, and every filter
//! slot is reclaimed (no leaks) no matter how a client misbehaves.
//!
//! The transport-level tests speak raw TCP on purpose: they exercise the
//! framing layer with byte sequences the typed [`FleetClient`] cannot emit.

use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};
use tof_mcl::core::MotionDelta;
use tof_mcl::fleet::client::FleetClient;
use tof_mcl::fleet::protocol::{
    decode_response, encode_request, read_frame, ErrorCode, Request, Response,
};
use tof_mcl::fleet::{DroneConfig, Fleet, FleetConfig, FleetError, FleetServer, FleetWorld};
use tof_mcl::gridmap::{MapBuilder, Pose2};
use tof_mcl::sensor::{AnchorRange, Beam};

const ACK: Duration = Duration::from_secs(30);

/// A small bordered room — fault tests need a servable world, not the paper
/// maze. Computed once and shared.
fn world() -> &'static FleetWorld {
    static WORLD: OnceLock<FleetWorld> = OnceLock::new();
    WORLD.get_or_init(|| {
        let map = MapBuilder::new(4.0, 4.0, 0.05).border_walls().build();
        FleetWorld::new(map, 1.5)
    })
}

fn start_fleet(config: FleetConfig) -> Arc<Fleet> {
    Fleet::start(world().clone(), config)
}

fn one_beam() -> Vec<Beam> {
    vec![Beam {
        azimuth_body_rad: 0.0,
        range_m: 1.0,
        origin_body: Pose2::new(0.0, 0.0, 0.0),
    }]
}

fn nudge() -> MotionDelta {
    MotionDelta {
        dx: 0.01,
        dy: 0.0,
        dtheta: 0.0,
    }
}

/// Polls until the fleet reports no registered drones (teardown is
/// asynchronous: EOF → DropOwner command → shard processing).
fn wait_for_empty(fleet: &Fleet) {
    let deadline = Instant::now() + ACK;
    while fleet.drones() != 0 {
        assert!(
            Instant::now() < deadline,
            "drone slots leaked: {} still registered",
            fleet.drones()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Reads one framed response off a raw socket.
fn read_response(stream: &mut TcpStream) -> Option<Response> {
    let mut payload = Vec::new();
    if !read_frame(stream, &mut payload).ok()? {
        return None;
    }
    decode_response(&payload).ok()
}

fn send_register(stream: &mut TcpStream, drone: u64) {
    let mut buf = Vec::new();
    encode_request(
        &Request::Register {
            drone_id: drone,
            particles: 64,
            seed: 1,
            backend: None,
            adaptive: false,
        },
        &mut buf,
    );
    stream.write_all(&buf).unwrap();
}

/// A decodable frame boundary around a garbage payload: the server must
/// answer `MalformedFrame` and keep the connection usable.
#[test]
fn malformed_payload_is_answered_and_the_connection_survives() {
    let fleet = start_fleet(FleetConfig::from_env());
    let server = FleetServer::serve(Arc::clone(&fleet), "127.0.0.1:0").unwrap();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_read_timeout(Some(ACK)).unwrap();

    // Unknown message type.
    stream.write_all(&5u32.to_le_bytes()).unwrap();
    stream.write_all(&[0x7F, 1, 2, 3, 4]).unwrap();
    assert!(matches!(
        read_response(&mut stream),
        Some(Response::Error {
            code: ErrorCode::MalformedFrame,
            ..
        })
    ));

    // Truncated body: a register frame cut short (valid boundary, bad body).
    stream.write_all(&3u32.to_le_bytes()).unwrap();
    stream.write_all(&[0x01, 0xAA, 0xBB]).unwrap();
    assert!(matches!(
        read_response(&mut stream),
        Some(Response::Error {
            code: ErrorCode::MalformedFrame,
            ..
        })
    ));

    // Non-finite odometry in an otherwise well-formed frame.
    let mut buf = Vec::new();
    encode_request(
        &Request::Frame {
            drone_id: 1,
            delta: MotionDelta {
                dx: f32::NAN,
                dy: 0.0,
                dtheta: 0.0,
            },
            beams: Vec::new(),
            ranges: Vec::new(),
        },
        &mut buf,
    );
    stream.write_all(&buf).unwrap();
    assert!(matches!(
        read_response(&mut stream),
        Some(Response::Error {
            code: ErrorCode::MalformedFrame,
            ..
        })
    ));

    // The same connection still registers and serves a drone.
    send_register(&mut stream, 10);
    assert!(matches!(
        read_response(&mut stream),
        Some(Response::Registered { drone_id: 10, .. })
    ));
    drop(stream);
    wait_for_empty(&fleet);
    fleet.shutdown();
}

/// A hostile length prefix cannot be resynchronized; only that connection
/// dies, and its drones are reclaimed.
#[test]
fn bad_length_prefix_tears_down_only_that_connection() {
    let fleet = start_fleet(FleetConfig::from_env());
    let server = FleetServer::serve(Arc::clone(&fleet), "127.0.0.1:0").unwrap();

    let mut victim = TcpStream::connect(server.local_addr()).unwrap();
    victim.set_read_timeout(Some(ACK)).unwrap();
    send_register(&mut victim, 1);
    assert!(matches!(
        read_response(&mut victim),
        Some(Response::Registered { drone_id: 1, .. })
    ));
    assert_eq!(fleet.drones(), 1);

    let mut bystander = FleetClient::connect(server.local_addr()).unwrap();
    bystander.set_read_timeout(Some(ACK)).unwrap();
    bystander
        .register(2, DroneConfig::new(64, 2))
        .unwrap()
        .unwrap();

    // Zero-length and oversized prefixes are both unrecoverable.
    victim.write_all(&0u32.to_le_bytes()).unwrap();
    assert!(matches!(
        read_response(&mut victim),
        Some(Response::Error {
            code: ErrorCode::MalformedFrame,
            ..
        })
    ));
    // The server hangs up after the error; EOF follows.
    assert!(read_response(&mut victim).is_none());

    // The victim's drone is reclaimed; the bystander is unaffected.
    let deadline = Instant::now() + ACK;
    while fleet.drones() != 1 {
        assert!(Instant::now() < deadline, "victim's slot not reclaimed");
        std::thread::sleep(Duration::from_millis(5));
    }
    bystander.push_frame(2, nudge(), &one_beam()).unwrap();
    bystander.flush().unwrap();
    assert!(matches!(
        bystander.recv().unwrap(),
        Some(Response::Pose(pose)) if pose.drone_id == 2
    ));
    bystander.deregister(2).unwrap().unwrap();
    wait_for_empty(&fleet);
    fleet.shutdown();
}

/// A connection that dies mid-frame (truncated bytes on the wire) or
/// mid-stream frees every slot it owned, and the ids become reusable.
#[test]
fn disconnects_free_slots_and_ids_become_reusable() {
    let fleet = start_fleet(FleetConfig::from_env());
    let server = FleetServer::serve(Arc::clone(&fleet), "127.0.0.1:0").unwrap();

    // Mid-frame death: announce 100 bytes, send 3, vanish.
    let mut client = FleetClient::connect(server.local_addr()).unwrap();
    client.set_read_timeout(Some(ACK)).unwrap();
    for drone in [1u64, 2, 3] {
        client
            .register(drone, DroneConfig::new(64, drone))
            .unwrap()
            .unwrap();
        client.push_frame(drone, nudge(), &one_beam()).unwrap();
    }
    client.flush().unwrap();
    assert_eq!(fleet.drones(), 3);
    drop(client); // vanish with frames possibly still in flight
    wait_for_empty(&fleet);

    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    raw.set_read_timeout(Some(ACK)).unwrap();
    send_register(&mut raw, 4);
    assert!(matches!(
        read_response(&mut raw),
        Some(Response::Registered { drone_id: 4, .. })
    ));
    raw.write_all(&100u32.to_le_bytes()).unwrap();
    raw.write_all(&[0x02, 0x00, 0x00]).unwrap();
    drop(raw);
    wait_for_empty(&fleet);

    // All ids are registerable again on a fresh connection.
    let mut fresh = FleetClient::connect(server.local_addr()).unwrap();
    fresh.set_read_timeout(Some(ACK)).unwrap();
    for drone in [1u64, 2, 3, 4] {
        fresh
            .register(drone, DroneConfig::new(64, drone))
            .unwrap()
            .unwrap();
    }
    assert_eq!(fleet.drones(), 4);
    drop(fresh);
    wait_for_empty(&fleet);
    fleet.shutdown();
}

/// Ownership and identity errors: duplicates, unknown drones and frames from
/// a connection that does not own the drone are rejected without touching the
/// owner's stream.
#[test]
fn ownership_violations_are_rejected_per_connection() {
    let fleet = start_fleet(FleetConfig::from_env());
    let server = FleetServer::serve(Arc::clone(&fleet), "127.0.0.1:0").unwrap();

    let mut owner = FleetClient::connect(server.local_addr()).unwrap();
    owner.set_read_timeout(Some(ACK)).unwrap();
    owner.register(7, DroneConfig::new(64, 7)).unwrap().unwrap();

    let mut intruder = FleetClient::connect(server.local_addr()).unwrap();
    intruder.set_read_timeout(Some(ACK)).unwrap();
    assert_eq!(
        intruder.register(7, DroneConfig::new(64, 8)).unwrap(),
        Err(FleetError::Rejected(ErrorCode::DuplicateDrone))
    );
    // A frame for a foreign drone: rejected, not applied.
    intruder.push_frame(7, nudge(), &one_beam()).unwrap();
    intruder.flush().unwrap();
    assert!(matches!(
        intruder.recv().unwrap(),
        Some(Response::Error {
            code: ErrorCode::NotOwner,
            drone_id: 7,
        })
    ));
    // A frame for a drone nobody registered.
    intruder.push_frame(99, nudge(), &one_beam()).unwrap();
    intruder.flush().unwrap();
    assert!(matches!(
        intruder.recv().unwrap(),
        Some(Response::Error {
            code: ErrorCode::UnknownDrone,
            drone_id: 99,
        })
    ));
    assert_eq!(
        intruder.deregister(7).unwrap(),
        Err(FleetError::Rejected(ErrorCode::NotOwner))
    );

    // The owner's drone is untouched: its stream clock starts at 1.
    owner.push_frame(7, nudge(), &one_beam()).unwrap();
    owner.flush().unwrap();
    assert!(matches!(
        owner.recv().unwrap(),
        Some(Response::Pose(pose)) if pose.drone_id == 7 && pose.update == 1
    ));
    owner.deregister(7).unwrap().unwrap();
    wait_for_empty(&fleet);
    fleet.shutdown();
}

/// Capacity and config rejection: both leave the registration count exact, so
/// rejected registrations can never eat slots.
#[test]
fn capacity_and_bad_configs_reject_without_leaking_slots() {
    let fleet = start_fleet(FleetConfig::from_env().with_max_drones(2));
    let mut handle = fleet.handle();

    // Zero particles is an invalid filter config.
    assert_eq!(
        handle.register(1, DroneConfig::new(0, 1), ACK),
        Err(FleetError::Rejected(ErrorCode::BadConfig))
    );
    assert_eq!(fleet.drones(), 0);

    handle.register(1, DroneConfig::new(64, 1), ACK).unwrap();
    handle.register(2, DroneConfig::new(64, 2), ACK).unwrap();
    assert_eq!(
        handle.register(3, DroneConfig::new(64, 3), ACK),
        Err(FleetError::Rejected(ErrorCode::Capacity))
    );
    assert_eq!(fleet.drones(), 2);

    // Freeing a slot makes room again.
    handle.deregister(1, ACK).unwrap();
    handle.register(3, DroneConfig::new(64, 3), ACK).unwrap();
    assert_eq!(fleet.drones(), 2);
    drop(handle);
    wait_for_empty(&fleet);
    fleet.shutdown();
}

/// A consumer that never drains its outbox loses (counted) poses, never
/// control responses, and never stalls the shards.
#[test]
fn slow_consumers_drop_poses_not_control_messages() {
    let fleet = start_fleet(FleetConfig::from_env().with_outbox_capacity(4));
    let mut handle = fleet.handle();
    handle.register(1, DroneConfig::new(64, 1), ACK).unwrap();

    // 50 frames into a 4-slot outbox nobody drains.
    for _ in 0..50 {
        handle.push_frame(1, nudge(), one_beam()).unwrap();
    }
    assert!(
        handle.barrier(ACK),
        "shards must not stall on a full outbox"
    );
    assert!(handle.dropped_poses() > 0);
    assert_eq!(fleet.stats().poses_dropped, handle.dropped_poses());
    assert_eq!(fleet.stats().updates, 50, "updates applied despite drops");

    // The deregister ack must survive even though the outbox is full of
    // poses: eviction prefers the oldest pose.
    handle.deregister(1, ACK).unwrap();
    wait_for_empty(&fleet);
    fleet.shutdown();
}

/// A register/deregister storm from many short-lived connections: no panics,
/// no slot leaks, and the server still serves afterwards.
#[test]
fn register_deregister_storm_leaks_nothing() {
    let fleet = start_fleet(FleetConfig::from_env());
    let server = FleetServer::serve(Arc::clone(&fleet), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let clean_exits = Arc::new(AtomicUsize::new(0));

    let threads: Vec<_> = (0..4u64)
        .map(|t| {
            let clean_exits = Arc::clone(&clean_exits);
            std::thread::spawn(move || {
                for round in 0..12u64 {
                    let drone = 1 + t * 100 + round;
                    let mut client = FleetClient::connect(addr).unwrap();
                    client.set_read_timeout(Some(ACK)).unwrap();
                    client
                        .register(drone, DroneConfig::new(64, drone))
                        .unwrap()
                        .unwrap();
                    client.push_frame(drone, nudge(), &one_beam()).unwrap();
                    client.flush().unwrap();
                    if round % 2 == 0 {
                        // Polite exit: deregister and close.
                        client.deregister(drone).unwrap().unwrap();
                        clean_exits.fetch_add(1, Ordering::Relaxed);
                    }
                    // Rude exit: drop the socket with the frame in flight.
                    drop(client);
                }
            })
        })
        .collect();
    for thread in threads {
        thread.join().expect("storm thread must not panic");
    }
    wait_for_empty(&fleet);
    assert_eq!(clean_exits.load(Ordering::Relaxed), 4 * 6);

    // The fleet is still fully serviceable.
    let mut client = FleetClient::connect(addr).unwrap();
    client.set_read_timeout(Some(ACK)).unwrap();
    client
        .register(9999, DroneConfig::new(64, 9))
        .unwrap()
        .unwrap();
    client.push_frame(9999, nudge(), &one_beam()).unwrap();
    client.flush().unwrap();
    assert!(matches!(
        client.recv().unwrap(),
        Some(Response::Pose(pose)) if pose.drone_id == 9999
    ));
    client.deregister(9999).unwrap().unwrap();
    drop(client);
    wait_for_empty(&fleet);
    fleet.shutdown();
}

/// Malformed v2 (fused) frames are answered per drone with `MalformedFrame`
/// and the connection survives; a well-formed v2 frame — even one whose UWB
/// ranges are all NaN (denied anchors) — is applied and answered with a pose.
#[test]
fn malformed_v2_frames_are_rejected_but_valid_fused_frames_serve() {
    let fleet = start_fleet(FleetConfig::from_env());
    let server = FleetServer::serve(Arc::clone(&fleet), "127.0.0.1:0").unwrap();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_read_timeout(Some(ACK)).unwrap();
    send_register(&mut stream, 21);
    assert!(matches!(
        read_response(&mut stream),
        Some(Response::Registered { drone_id: 21, .. })
    ));

    let fused = Request::Frame {
        drone_id: 21,
        delta: nudge(),
        beams: one_beam(),
        ranges: vec![
            AnchorRange::new(0.2, 0.2, 1.5),
            AnchorRange::new(3.8, 3.8, f32::NAN),
        ],
    };
    let mut buf = Vec::new();
    encode_request(&fused, &mut buf);

    // Chop the anchor block off the v2 frame: the truncated body must be
    // answered with MalformedFrame, not applied.
    let anchor_block = 2 + 2 * (3 * 4);
    let body_len = (buf.len() - 4 - anchor_block) as u32;
    let mut mangled = buf[..buf.len() - anchor_block].to_vec();
    mangled[..4].copy_from_slice(&body_len.to_le_bytes());
    stream.write_all(&mangled).unwrap();
    assert!(matches!(
        read_response(&mut stream),
        Some(Response::Error {
            code: ErrorCode::MalformedFrame,
            ..
        })
    ));

    // A non-finite anchor *position* (unlike a range) is also malformed.
    let mut bad_anchor = buf.clone();
    let x_at = buf.len() - 2 * (3 * 4);
    bad_anchor[x_at..x_at + 4].copy_from_slice(&f32::INFINITY.to_le_bytes());
    stream.write_all(&bad_anchor).unwrap();
    assert!(matches!(
        read_response(&mut stream),
        Some(Response::Error {
            code: ErrorCode::MalformedFrame,
            ..
        })
    ));

    // The intact fused frame is applied on the same connection.
    stream.write_all(&buf).unwrap();
    assert!(matches!(
        read_response(&mut stream),
        Some(Response::Pose(pose)) if pose.drone_id == 21 && pose.update == 1
    ));

    // The typed client path speaks v2 too.
    let mut client = FleetClient::connect(server.local_addr()).unwrap();
    client.set_read_timeout(Some(ACK)).unwrap();
    client
        .register(22, DroneConfig::new(64, 22))
        .unwrap()
        .unwrap();
    client
        .push_fused_frame(22, nudge(), &one_beam(), &[AnchorRange::new(1.0, 1.0, 0.8)])
        .unwrap();
    client.flush().unwrap();
    assert!(matches!(
        client.recv().unwrap(),
        Some(Response::Pose(pose)) if pose.drone_id == 22 && pose.update == 1
    ));
    client.deregister(22).unwrap().unwrap();
    drop(client);
    drop(stream);
    wait_for_empty(&fleet);
    fleet.shutdown();
}

/// Odometry-only frames (zero beams) are legal traffic: the filter predicts
/// and answers with its current estimate.
#[test]
fn empty_beam_frames_are_valid_odometry_only_steps() {
    let fleet = start_fleet(FleetConfig::from_env());
    let mut handle = fleet.handle();
    handle.register(1, DroneConfig::new(64, 1), ACK).unwrap();
    handle.push_frame(1, nudge(), Vec::new()).unwrap();
    assert!(handle.barrier(ACK));
    assert!(matches!(
        handle.recv_timeout(ACK),
        Some(Response::Pose(pose)) if pose.drone_id == 1 && pose.update == 1
    ));
    handle.deregister(1, ACK).unwrap();
    fleet.shutdown();
}
