//! Fleet service determinism: hosting K drones on the sharded fleet server is
//! *unobservable in the pose streams* — every drone's stream is bit-identical
//! to an independent single-filter run over the same traffic, no matter how
//! the fleet is sharded, how arrivals interleave across drones, which kernel
//! backend each filter picks, or whether the frames travel through the
//! in-process handle or the TCP protocol.
//!
//! Why this must hold: a drone's filter state depends only on its *own*
//! ordered update sequence (counter-based RNG keyed on seed and update
//! index), shards preserve per-drone FIFO order, and coalescing only groups
//! *different* drones into one pool dispatch. The proptest harness varies the
//! free parameters the design claims are unobservable — shard count,
//! interleaving schedule, coalescing pressure (barriers mid-stream force
//! small batches; back-to-back pushes force large ones), backend mix and
//! adaptive mode — and asserts bit-identity on every field of every pose.
//!
//! The CI workflow additionally runs this file under `MCL_TEST_WORKERS`
//! ∈ {1, 3, 8} (sizing the shared pool the shards dispatch onto) and
//! `MCL_KERNEL_BACKEND` ∈ {scalar, lanes}, so the pins hold on real
//! multi-thread dispatch of either default backend.

use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use std::time::Duration;
use tof_mcl::core::{KernelBackend, MonteCarloLocalization};
use tof_mcl::fleet::client::FleetClient;
use tof_mcl::fleet::protocol::Response;
use tof_mcl::fleet::{DroneConfig, Fleet, FleetConfig, FleetServer, FleetWorld};
use tof_mcl::gridmap::{DroneMaze, EuclideanDistanceField};
use tof_mcl::sensor::{BeamBatch, ObservationBatch};
use tof_mcl::sim::{
    sequence_traffic, RunnerConfig, SequenceConfig, SequenceGenerator, TrafficStep,
    TrajectoryConfig,
};

/// Ack/barrier deadline. Generous: CI hosts time-slice one core.
const ACK: Duration = Duration::from_secs(30);

/// One pose response reduced to raw bits for exact comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PoseBits {
    applied: bool,
    x: u32,
    y: u32,
    theta: u32,
    position_std: u32,
    yaw_std: u32,
    neff: u32,
}

/// The shared world (paper maze + fp32 EDT at the default `r_max`) — computed
/// once; every case and both transports reuse it.
fn world() -> &'static FleetWorld {
    static WORLD: OnceLock<FleetWorld> = OnceLock::new();
    WORLD.get_or_init(|| {
        let maze = DroneMaze::paper_layout(17);
        FleetWorld::new(maze.map().clone(), 1.5)
    })
}

/// Wire traffic for one drone: a short flight through the maze, flattened
/// with the same frame-limit discipline `run_sequence` uses.
fn traffic(id: usize, seed: u64, duration_s: f32) -> Vec<TrafficStep> {
    let maze = DroneMaze::paper_layout(17);
    let config = SequenceConfig {
        trajectory: TrajectoryConfig {
            duration_s,
            region: Some(maze.physical_region()),
            ..TrajectoryConfig::default()
        },
        ..SequenceConfig::default()
    };
    let sequence = SequenceGenerator::new(config).generate(maze.map(), id, seed);
    sequence_traffic(&sequence, &RunnerConfig::default())
}

/// An independent single-filter run over `steps`, built from the *exact*
/// config the fleet's register path derives (`Fleet::filter_config`) and the
/// same shared EDT, replaying the same predict/partition/update sequence the
/// shard applies.
fn reference_stream(fleet: &Fleet, drone: &DroneConfig, steps: &[TrafficStep]) -> Vec<PoseBits> {
    let mut filter = MonteCarloLocalization::<f32, Arc<EuclideanDistanceField>>::new(
        fleet.filter_config(drone),
        Arc::clone(world().field()),
    )
    .expect("reference filter construction");
    filter
        .initialize_uniform(world().map(), drone.seed)
        .expect("reference global init");
    steps
        .iter()
        .map(|step| {
            filter.predict(step.delta);
            let mut batch = BeamBatch::from_beams(&step.beams);
            batch.partition_in_range(filter.config().r_max);
            let outcome = filter
                .update_observations(&ObservationBatch::from_beam_batch(batch))
                .expect("initialized filter");
            let applied = outcome.is_applied();
            let estimate = match outcome.estimate() {
                Some(estimate) => *estimate,
                None => filter.estimate(),
            };
            PoseBits {
                applied,
                x: estimate.pose.x.to_bits(),
                y: estimate.pose.y.to_bits(),
                theta: estimate.pose.theta.to_bits(),
                position_std: estimate.position_std_m.to_bits(),
                yaw_std: estimate.yaw_std_rad.to_bits(),
                neff: estimate.neff.to_bits(),
            }
        })
        .collect()
}

fn pose_bits(response: &Response) -> Option<(u64, u32, PoseBits)> {
    match response {
        Response::Pose(pose) => Some((
            pose.drone_id,
            pose.update,
            PoseBits {
                applied: pose.applied,
                x: pose.x.to_bits(),
                y: pose.y.to_bits(),
                theta: pose.theta.to_bits(),
                position_std: pose.position_std_m.to_bits(),
                yaw_std: pose.yaw_std_rad.to_bits(),
                neff: pose.neff.to_bits(),
            },
        )),
        _ => None,
    }
}

/// An arrival schedule: `(drone index, step index)` pairs, each drone's steps
/// in order (the only ordering the service guarantees — and the only one the
/// filters can observe).
fn schedule(counts: &[usize], mode: usize, seed: u64) -> Vec<(usize, usize)> {
    let total: usize = counts.iter().sum();
    let mut next = vec![0usize; counts.len()];
    let mut order = Vec::with_capacity(total);
    match mode {
        // Step-major round-robin: maximal cross-drone interleaving.
        0 => {
            while order.len() < total {
                for (drone, step) in next.iter_mut().enumerate() {
                    if *step < counts[drone] {
                        order.push((drone, *step));
                        *step += 1;
                    }
                }
            }
        }
        // Drone-major blocks: each drone's full stream back to back,
        // maximal single-drone coalescing.
        1 => {
            for (drone, &count) in counts.iter().enumerate() {
                for step in 0..count {
                    order.push((drone, step));
                }
            }
        }
        // Seeded random merge preserving per-drone order.
        _ => {
            let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
            let mut rng = move || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state >> 33
            };
            while order.len() < total {
                let live: Vec<usize> = (0..counts.len()).filter(|&d| next[d] < counts[d]).collect();
                let drone = live[(rng() as usize) % live.len()];
                order.push((drone, next[drone]));
                next[drone] += 1;
            }
        }
    }
    order
}

/// Pushes the scheduled traffic through an in-process handle and collects the
/// per-drone pose streams.
fn fleet_streams(
    fleet: &Arc<Fleet>,
    drones: &[(u64, DroneConfig, Vec<TrafficStep>)],
    order: &[(usize, usize)],
    barrier_every: Option<usize>,
) -> HashMap<u64, Vec<PoseBits>> {
    let mut handle = fleet.handle();
    for (id, config, _) in drones {
        handle
            .register(*id, *config, ACK)
            .expect("register must succeed");
    }
    assert_eq!(fleet.drones(), drones.len());
    for (sent, &(drone, step)) in order.iter().enumerate() {
        let (id, _, steps) = &drones[drone];
        handle
            .push_frame(*id, steps[step].delta, steps[step].beams.clone())
            .expect("push must succeed");
        // An occasional barrier drains the shard queues, forcing the next
        // pushes to arrive on idle shards — varies coalesced batch sizes.
        if barrier_every.is_some_and(|n| (sent + 1) % n == 0) {
            assert!(handle.barrier(ACK), "mid-stream barrier timed out");
        }
    }
    assert!(handle.barrier(ACK), "final barrier timed out");

    let mut streams: HashMap<u64, Vec<PoseBits>> = HashMap::new();
    let total: usize = drones.iter().map(|(_, _, steps)| steps.len()).sum();
    let mut received = 0usize;
    while received < total {
        let response = handle
            .recv_timeout(ACK)
            .expect("pose stream ended early — poses lost or dropped");
        let (id, update, bits) = pose_bits(&response).expect("only poses expected after acks");
        let stream = streams.entry(id).or_default();
        assert_eq!(
            update as usize,
            stream.len() + 1,
            "drone {id} pose stream out of order"
        );
        stream.push(bits);
        received += 1;
    }
    assert_eq!(handle.dropped_poses(), 0, "outbox must not have overflowed");
    for (id, _, _) in drones {
        handle.deregister(*id, ACK).expect("deregister");
    }
    assert_eq!(
        fleet.drones(),
        0,
        "deregistered drones must free their slots"
    );
    streams
}

/// Backend mix assigned round-robin so every case exercises all three
/// explicit backends plus the env-driven default.
const BACKENDS: [Option<KernelBackend>; 4] = [
    None,
    Some(KernelBackend::Scalar),
    Some(KernelBackend::Lanes),
    Some(KernelBackend::Avx2),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The tentpole determinism property: for a sampled fleet shape, drone
    /// mix and arrival schedule, every hosted drone's pose stream is
    /// bit-identical to its independent single-filter twin.
    #[test]
    fn hosted_streams_match_independent_filters(
        k in 2usize..=4,
        particles_log2 in 7u32..=8,
        base_seed in 0u64..1_000,
        mode in 0usize..3,
        shards in 1usize..=3,
        barrier_stride in 0usize..=2,
    ) {
        let particles = 1usize << particles_log2;
        let drones: Vec<(u64, DroneConfig, Vec<TrafficStep>)> = (0..k)
            .map(|i| {
                let mut config = DroneConfig::new(particles, base_seed * 31 + i as u64);
                config.backend = BACKENDS[i % BACKENDS.len()];
                // One adaptive drone per fleet: KLD population control must
                // be just as schedule-independent as fixed populations.
                config.adaptive = i == k - 1;
                // Non-contiguous ids spread drones across shards unevenly.
                (1000 + (i as u64) * 7, config, traffic(i, base_seed + i as u64, 2.0))
            })
            .collect();
        let counts: Vec<usize> = drones.iter().map(|(_, _, steps)| steps.len()).collect();
        let total: usize = counts.iter().sum();
        prop_assert!(total > 0);

        let fleet = Fleet::start(
            world().clone(),
            FleetConfig::from_env()
                .with_shards(shards)
                .with_outbox_capacity(total + 64),
        );
        let order = schedule(&counts, mode, base_seed);
        let barrier_every = match barrier_stride {
            0 => None,
            1 => Some(7),
            _ => Some(13),
        };
        let streams = fleet_streams(&fleet, &drones, &order, barrier_every);

        let stats = fleet.stats();
        prop_assert_eq!(stats.updates, total as u64);
        prop_assert_eq!(stats.poses_dropped, 0);
        prop_assert!(stats.mean_batch() >= 1.0);

        for (id, config, steps) in &drones {
            let expected = reference_stream(&fleet, config, steps);
            let got = &streams[id];
            prop_assert_eq!(got.len(), expected.len());
            for (update, (g, e)) in got.iter().zip(&expected).enumerate() {
                prop_assert_eq!(g, e, "drone {} diverged at update {}", id, update + 1);
            }
        }
        fleet.shutdown();
    }
}

/// The same bit-identity through the full TCP path: length-prefixed frames
/// carry the beam and odometry f32s as raw bits, so a remote client's pose
/// stream must match the independent filters exactly too.
#[test]
fn tcp_streams_match_independent_filters() {
    let drones: Vec<(u64, DroneConfig, Vec<TrafficStep>)> = (0..3usize)
        .map(|i| {
            let mut config = DroneConfig::new(128, 400 + i as u64);
            config.backend = BACKENDS[(i + 1) % BACKENDS.len()];
            (50 + i as u64, config, traffic(i, 90 + i as u64, 2.0))
        })
        .collect();
    let total: usize = drones.iter().map(|(_, _, steps)| steps.len()).sum();

    let fleet = Fleet::start(
        world().clone(),
        FleetConfig::from_env().with_outbox_capacity(total + 64),
    );
    let server = FleetServer::serve(Arc::clone(&fleet), "127.0.0.1:0").expect("bind");
    let mut client = FleetClient::connect(server.local_addr()).expect("connect");
    client.set_read_timeout(Some(ACK)).expect("timeout");

    for (id, config, _) in &drones {
        client
            .register(*id, *config)
            .expect("io")
            .expect("register accepted");
    }
    // Step-major round-robin over one socket: frames from different drones
    // land in the same shard wakes and coalesce.
    let counts: Vec<usize> = drones.iter().map(|(_, _, steps)| steps.len()).collect();
    for (drone, step) in schedule(&counts, 0, 0) {
        let (id, _, steps) = &drones[drone];
        client
            .push_frame(*id, steps[step].delta, &steps[step].beams)
            .expect("push");
    }
    client.flush().expect("flush");

    let mut streams: HashMap<u64, Vec<PoseBits>> = HashMap::new();
    for _ in 0..total {
        let response = client
            .recv()
            .expect("io")
            .expect("server closed before all poses arrived");
        let (id, update, bits) = pose_bits(&response).expect("pose expected");
        let stream = streams.entry(id).or_default();
        assert_eq!(update as usize, stream.len() + 1);
        stream.push(bits);
    }
    for (id, config, steps) in &drones {
        let expected = reference_stream(&fleet, config, steps);
        assert_eq!(streams[id], expected, "drone {id} diverged over TCP");
    }
    for (id, _, _) in &drones {
        client.deregister(*id).expect("io").expect("deregister");
    }
    drop(server);
    assert_eq!(fleet.drones(), 0);
    fleet.shutdown();
}
