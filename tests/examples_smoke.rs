//! Smoke test for the `examples/` directory.
//!
//! Compilation of all five examples is enforced by `cargo check --examples`
//! (run in CI); this test additionally drives the quickstart example's exact
//! code path in-process — scenario construction, sequence generation and a
//! full filter evaluation — and the kidnapped-robot path of
//! `examples/global_relocalization.rs`, so a regression that makes either
//! walk-through panic or diverge is caught by `cargo test` alone.

use tof_mcl::core::precision::PipelineConfig;
use tof_mcl::sim::suite::ScenarioSuite;
use tof_mcl::sim::PaperScenario;

/// Mirrors `examples/quickstart.rs` with a shorter flight so the suite stays
/// fast: same seed, same maze, same fp16qm/4096-particle configuration.
#[test]
fn quickstart_path_runs_to_completion() {
    let scenario = PaperScenario::with_settings(42, 1, 10.0);
    let sequence = &scenario.sequences()[0];

    assert!(scenario.map().cell_count() > 0);
    assert!(!sequence.is_empty());
    assert!(sequence.duration_s() > 0.0);

    let result = scenario.evaluate(sequence, PipelineConfig::FP16_QM, 4096, 1);

    // The walk-through must produce a well-formed result; the statistical
    // claims themselves are covered by tests/paper_claims.rs.
    if let Some(t) = result.convergence_time_s {
        assert!(t >= 0.0 && t <= sequence.duration_s() + 1.0);
    }
    if let Some(ate) = result.ate_m {
        assert!(ate.is_finite() && ate >= 0.0);
    }
}

/// The quickstart path is deterministic for a fixed seed: two evaluations of
/// the same sequence and configuration must agree exactly.
#[test]
fn quickstart_path_is_deterministic() {
    let scenario = PaperScenario::with_settings(7, 1, 6.0);
    let sequence = &scenario.sequences()[0];
    let a = scenario.evaluate(sequence, PipelineConfig::FP16_QM, 512, 3);
    let b = scenario.evaluate(sequence, PipelineConfig::FP16_QM, 512, 3);
    assert_eq!(a.convergence_time_s, b.convergence_time_s);
    assert_eq!(a.ate_m, b.ate_m);
    assert_eq!(a.success, b.success);
}

/// Mirrors `examples/global_relocalization.rs` with a shorter flight and
/// fewer particles: the suite's kidnapped-robot scenario builds, the kidnap
/// lands in the sequence's stress timeline, and a full evaluation scores the
/// recovery metrics without panicking.
#[test]
fn kidnapped_robot_path_runs_to_completion() {
    let mut spec = ScenarioSuite::quick()
        .get("paper-kidnap")
        .expect("the suite registers the kidnapped-robot scenario")
        .clone();
    spec.duration_s = 8.0;
    let scenario = spec.build(7);
    let sequence = &scenario.sequences()[0];
    assert_eq!(sequence.stress.kidnap_times_s.len(), 1);

    let result = scenario.evaluate(sequence, PipelineConfig::FP32_QM, 512, 3);
    assert_eq!(result.steps, sequence.len());
    assert_eq!(result.kidnaps, 1);
    // Recovery within a scaled-down run is not guaranteed, but when reported
    // the time must be well-formed.
    if let Some(t) = result.mean_recovery_time_s {
        assert!(t >= 0.0 && t <= sequence.duration_s());
        assert_eq!(result.kidnaps_recovered, 1);
    }
    // The path is deterministic, recovery metrics included.
    let again = scenario.evaluate(sequence, PipelineConfig::FP32_QM, 512, 3);
    assert_eq!(result, again);
}
