//! Equivalence harness pinning the lane-batched and explicit-AVX2 kernel
//! backends to the scalar reference.
//!
//! The `mcl_core::kernel` lane-width contract promises that
//! [`KernelBackend::Lanes`] **and** [`KernelBackend::Avx2`] are
//! **bit-identical** to [`KernelBackend::Scalar`] for `f32` storage: lane
//! grouping (and, for Avx2, issuing the group bodies as single-rounding
//! AVX2 register ops with gathered EDT lookups) restructures the loops,
//! never the per-particle arithmetic. On hosts without AVX2 the Avx2 legs
//! run the lane bodies, so the suite passes everywhere; on AVX2 hosts they
//! pin the intrinsics. This suite pins that promise
//!
//! * per kernel, across **every tail length** `n % LANES ∈ 0..LANES` (the
//!   lane kernels switch from group bodies to the scalar-reference tail at
//!   `n − n % LANES`, so each class exercises a different switch point);
//! * through every [`ClusterLayout`] dispatch shape (`SINGLE`, `new(3)`,
//!   `GAP9` — uneven chunking creates additional intra-chunk tails);
//! * across warm-pool reruns (the shared worker pool must not make a second,
//!   warm dispatch differ from the first);
//! * for **fused ToF + UWB batches** (including a denied NaN-range anchor)
//!   as well as beam-only ones — the anchor-range kernel is held to the same
//!   bit-identity contract as the beam kernel, full-filter, across every
//!   worker count;
//! * for binary16 storage, within [`F16_BACKEND_ULP_BOUND`] f16 ULPs — the
//!   bound is asserted exactly, not approximated with a float tolerance.

use proptest::prelude::*;
use tof_mcl::core::kernel::{self, KernelBackend, LANES};
use tof_mcl::core::{
    AdaptiveConfig, AnchorRangeModel, BeamEndPointModel, ClusterLayout, MclConfig,
    MonteCarloLocalization, MotionDelta, MotionModel, Particle, ParticleBuffer,
};
use tof_mcl::gridmap::{EuclideanDistanceField, MapBuilder, OccupancyGrid, Pose2};
use tof_mcl::num::{Scalar, F16};
use tof_mcl::sensor::{AnchorRange, Beam, BeamBatch, ObservationBatch};

/// Maximum distance, in binary16 ULPs, between a particle component stored by
/// the `Lanes` backend and the same component stored by `Scalar`, for F16
/// storage. The bound is **zero**: every lane performs the scalar op sequence
/// on the same operands, so each `F16` store rounds the same `f32` value —
/// there is no step where the backends could round differently. Asserting 0
/// through the ULP machinery (rather than `==`) keeps the bound explicit and
/// ready to relax if a future lane kernel legitimately re-associates.
const F16_BACKEND_ULP_BOUND: u32 = 0;

/// Distance between two binary16 values in ULPs (units in the last place),
/// counted along the ordered line of finite-and-infinite f16 values.
fn f16_ulp_distance(a: F16, b: F16) -> u32 {
    assert!(!a.is_nan() && !b.is_nan(), "ULP distance undefined for NaN");
    fn key(v: F16) -> i32 {
        let bits = v.to_bits();
        let magnitude = i32::from(bits & 0x7FFF);
        if bits & 0x8000 != 0 {
            -magnitude
        } else {
            magnitude
        }
    }
    key(a).abs_diff(key(b))
}

fn layouts() -> [ClusterLayout; 3] {
    [
        ClusterLayout::SINGLE,
        ClusterLayout::new(3),
        ClusterLayout::GAP9,
    ]
}

fn arena() -> OccupancyGrid {
    MapBuilder::new(4.0, 4.0, 0.05)
        .border_walls()
        .wall((2.0, 0.0), (2.0, 2.4))
        .filled_rect((2.8, 2.8), (3.2, 3.2))
        .build()
}

/// A deterministic beam ring: in-range, out-of-range and NaN-range beams
/// interleaved, so both the branch-free prefix path and the skipping fallback
/// of the correction kernel see work.
fn synthetic_beams(salt: u64) -> Vec<Beam> {
    (0..14)
        .map(|k| Beam {
            azimuth_body_rad: k as f32 * core::f32::consts::TAU / 14.0,
            range_m: match (k % 5, salt % 3) {
                (4, _) => 2.2,      // beyond r_max
                (3, 0) => f32::NAN, // corrupt zone
                _ => 0.25 + 0.1 * ((k as u64 + salt) % 11) as f32,
            },
            origin_body: Pose2::default(),
        })
        .collect()
}

/// A deterministic UWB anchor set inside the 4 m × 4 m arena: two usable
/// anchors with salt-varied measured ranges plus one denied anchor whose
/// range is NaN, so the fused legs keep the non-finite skip rule on the
/// pinned path.
fn synthetic_anchors(salt: u64) -> Vec<AnchorRange> {
    vec![
        AnchorRange::new(0.4, 0.4, 1.1 + 0.07 * ((salt % 13) as f32)),
        AnchorRange::new(3.6, 3.2, 2.3 - 0.05 * ((salt % 7) as f32)),
        AnchorRange::new(2.0, 0.4, f32::NAN),
    ]
}

fn buffer<S: Scalar>(n: usize, salt: u64) -> ParticleBuffer<S> {
    (0..n)
        .map(|i| {
            let k = i as u64 + salt;
            Particle::from_pose(
                &Pose2::new(
                    0.3 + ((k * 7) % 67) as f32 * 0.05,
                    0.3 + ((k * 11) % 61) as f32 * 0.055,
                    ((k * 13) % 41) as f32 * 0.15,
                ),
                (1 + (k % 9)) as f32 / n as f32,
            )
        })
        .collect()
}

fn assert_buffers_bit_identical(a: &ParticleBuffer<f32>, b: &ParticleBuffer<f32>, label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: length mismatch");
    for i in 0..a.len() {
        let (pa, pb) = (a.get(i), b.get(i));
        assert_eq!(pa.x.to_bits(), pb.x.to_bits(), "{label}: x[{i}]");
        assert_eq!(pa.y.to_bits(), pb.y.to_bits(), "{label}: y[{i}]");
        assert_eq!(
            pa.theta.to_bits(),
            pb.theta.to_bits(),
            "{label}: theta[{i}]"
        );
        assert_eq!(
            pa.weight.to_bits(),
            pb.weight.to_bits(),
            "{label}: weight[{i}]"
        );
    }
}

/// Every non-scalar backend, every tail length, every layout, every kernel,
/// both batch paths: the batched kernels must be bit-identical to the scalar
/// reference. `n = 4·LANES + tail` keeps several full lane groups in front of
/// each tail class, and the uneven layouts cut chunks that produce further
/// `chunk_len % LANES` classes.
#[test]
fn all_five_kernels_are_bit_identical_across_every_tail_length_and_layout() {
    let map = arena();
    let edt = EuclideanDistanceField::compute(&map, 1.5);
    let model = BeamEndPointModel::new(0.25, 1.5);
    let anchor_model = AnchorRangeModel::new(0.2);
    let motion = MotionModel::new([0.08, 0.08, 0.05]);
    let delta = MotionDelta::new(0.11, 0.015, 0.04);
    let beams = synthetic_beams(1);
    let unpartitioned = BeamBatch::from_beams(&beams);
    let mut partitioned = unpartitioned.clone();
    partitioned.partition_in_range(model.r_max());

    for backend in [KernelBackend::Lanes, KernelBackend::Avx2] {
        for tail in 0..LANES {
            let n = 4 * LANES + tail;
            for layout in layouts() {
                let label = |kern: &str| format!("{} {kern} n={n}", backend.name());
                // Motion kernel.
                let mut scalar: ParticleBuffer<f32> = buffer(n, tail as u64);
                let mut batched = scalar.clone();
                layout.for_each_split(scalar.as_mut_slice(), |start, chunk| {
                    kernel::motion_predict(chunk, &motion, &delta, 5, 1, start as u64);
                });
                layout.for_each_split(batched.as_mut_slice(), |start, chunk| {
                    kernel::motion_predict_with(
                        backend,
                        chunk,
                        &motion,
                        &delta,
                        5,
                        1,
                        start as u64,
                    );
                });
                assert_buffers_bit_identical(&scalar, &batched, &label("motion"));

                // Observation kernel, branch-free prefix and skipping fallback.
                for (batch, path) in [(&partitioned, "prefix"), (&unpartitioned, "fallback")] {
                    let mut scalar_logs = vec![0.0f32; n];
                    layout.for_each_split(
                        (scalar.as_slice(), scalar_logs.as_mut_slice()),
                        |_, (chunk, out)| {
                            kernel::observation_log_likelihoods(chunk, &edt, &model, batch, out);
                        },
                    );
                    let mut batched_logs = vec![0.0f32; n];
                    layout.for_each_split(
                        (batched.as_slice(), batched_logs.as_mut_slice()),
                        |_, (chunk, out)| {
                            kernel::observation_log_likelihoods_with(
                                backend, chunk, &edt, &model, batch, out,
                            );
                        },
                    );
                    for (i, (a, b)) in scalar_logs.iter().zip(batched_logs.iter()).enumerate() {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "{} observation[{path}] n={n} log[{i}]",
                            backend.name()
                        );
                    }

                    // Reweight on the logs just produced.
                    let max_log = scalar_logs.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
                    let mut scalar_w: Vec<f32> = scalar.weight().to_vec();
                    let mut batched_w = scalar_w.clone();
                    layout.for_each_split(
                        (scalar_w.as_mut_slice(), scalar_logs.as_slice()),
                        |_, (w, l)| kernel::reweight(w, l, max_log),
                    );
                    layout.for_each_split(
                        (batched_w.as_mut_slice(), batched_logs.as_slice()),
                        |_, (w, l)| kernel::reweight_with(backend, w, l, max_log),
                    );
                    for (i, (a, b)) in scalar_w.iter().zip(batched_w.iter()).enumerate() {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "{} reweight[{path}] n={n} w[{i}]",
                            backend.name()
                        );
                    }
                }

                // Anchor-range kernel. It *accumulates* onto the beam logs
                // (that is the fused contract), so seed both sides with a
                // deterministic non-zero prefix; the batch carries a denied
                // NaN anchor to keep the skip predicate on the pinned path.
                let fused =
                    ObservationBatch::new().with_anchors(&synthetic_anchors(tail as u64 + 2));
                let seed_logs = |logs: &mut [f32]| {
                    for (i, slot) in logs.iter_mut().enumerate() {
                        *slot = -0.25 * ((i % 17) as f32);
                    }
                };
                let mut scalar_logs = vec![0.0f32; n];
                seed_logs(&mut scalar_logs);
                layout.for_each_split(
                    (scalar.as_slice(), scalar_logs.as_mut_slice()),
                    |_, (chunk, out)| {
                        kernel::anchor_log_likelihoods(chunk, &anchor_model, &fused, out);
                    },
                );
                let mut batched_logs = vec![0.0f32; n];
                seed_logs(&mut batched_logs);
                layout.for_each_split(
                    (batched.as_slice(), batched_logs.as_mut_slice()),
                    |_, (chunk, out)| {
                        kernel::anchor_log_likelihoods_with(
                            backend,
                            chunk,
                            &anchor_model,
                            &fused,
                            out,
                        );
                    },
                );
                for (i, (a, b)) in scalar_logs.iter().zip(batched_logs.iter()).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{} anchor n={n} log[{i}]",
                        backend.name()
                    );
                }

                // Resampling scatter (near-sorted indices, like a systematic plan).
                let indices: Vec<usize> = (0..n).map(|i| (i * 2).min(n - 1)).collect();
                let uniform = 1.0f32 / n as f32;
                let mut scalar_target: ParticleBuffer<f32> = buffer(n, 99);
                let mut batched_target = scalar_target.clone();
                kernel::resample_scatter(
                    scalar.as_slice(),
                    scalar_target.as_mut_slice(),
                    &indices,
                    uniform,
                );
                kernel::resample_scatter_with(
                    backend,
                    batched.as_slice(),
                    batched_target.as_mut_slice(),
                    &indices,
                    uniform,
                );
                assert_buffers_bit_identical(&scalar_target, &batched_target, &label("scatter"));

                // Pose reduction.
                let a = kernel::pose_estimate_with(&scalar_target, &layout, KernelBackend::Scalar);
                let b = kernel::pose_estimate_with(&batched_target, &layout, backend);
                let pose = label("pose");
                assert_eq!(a.pose.x.to_bits(), b.pose.x.to_bits(), "{pose}");
                assert_eq!(a.pose.y.to_bits(), b.pose.y.to_bits(), "{pose}");
                assert_eq!(a.pose.theta.to_bits(), b.pose.theta.to_bits(), "{pose}");
                assert_eq!(
                    a.position_std_m.to_bits(),
                    b.position_std_m.to_bits(),
                    "{pose}"
                );
                assert_eq!(a.yaw_std_rad.to_bits(), b.yaw_std_rad.to_bits(), "{pose}");
                assert_eq!(a.neff.to_bits(), b.neff.to_bits(), "{pose}");
            }
        }
    }
}

/// Runs a full filter (uniform init + three gated updates) under `backend`
/// and returns the particle buffer and final estimate. A non-empty `anchors`
/// slice turns every update into a fused ToF + UWB batch scored through the
/// anchor-range kernel; an empty slice runs the exact beam-only sequence the
/// deprecated shims pin.
#[allow(clippy::too_many_arguments)]
fn run_filter<S: Scalar, D: tof_mcl::gridmap::DistanceField + Clone>(
    map: &OccupancyGrid,
    edt: &D,
    beams: &[Beam],
    anchors: &[AnchorRange],
    n: usize,
    seed: u64,
    workers: usize,
    backend: KernelBackend,
) -> (ParticleBuffer<S>, tof_mcl::core::PoseEstimate) {
    let config = MclConfig::default()
        .with_particles(n)
        .with_seed(seed)
        .with_workers(workers)
        .with_kernel_backend(backend);
    let mut filter = MonteCarloLocalization::<S, _>::new(config, edt.clone()).unwrap();
    filter.initialize_uniform(map, seed).unwrap();
    let delta = MotionDelta::new(0.12, 0.01, 0.05);
    let mut observations = ObservationBatch::from_beams(beams).with_anchors(anchors);
    observations.partition_in_range(filter.config().r_max);
    for _ in 0..3 {
        filter.predict(delta);
        let outcome = filter.update_observations(&observations).unwrap();
        assert!(outcome.is_applied());
    }
    let estimate = filter.estimate();
    (filter.particles().current().clone(), estimate)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Full-filter equivalence for f32 storage: for every seed, particle
    /// count (the `+ tail` term sweeps the `n % LANES` classes with the
    /// case index), worker layout, observation mix (beam-only *and* fused
    /// ToF + UWB) and a warm-pool rerun, the `Lanes` and `Avx2` filters are
    /// bit-identical to the `Scalar` filter.
    #[test]
    fn batched_filters_are_bit_identical_to_scalar_for_f32(
        seed in 0u64..300,
        base in 2usize..12,
        tail in 0usize..LANES,
    ) {
        let n = base * LANES + tail;
        let map = arena();
        let edt = EuclideanDistanceField::compute(&map, 1.5);
        let beams = synthetic_beams(seed);
        // Cartesian sweep: every worker layout under a beam-only batch and a
        // fused ToF + UWB batch (two usable anchors plus a denied NaN one).
        for (workers, anchors) in [1usize, 3, 8]
            .into_iter()
            .flat_map(|w| [(w, Vec::new()), (w, synthetic_anchors(seed))])
        {
            let (scalar_particles, scalar_estimate) = run_filter::<f32, _>(
                &map, &edt, &beams, &anchors, n, seed, workers, KernelBackend::Scalar,
            );
            for backend in [KernelBackend::Lanes, KernelBackend::Avx2] {
                // Two runs: the second re-dispatches on the already-warm
                // shared pool and must not drift.
                for rerun in 0..2 {
                    let (particles, estimate) =
                        run_filter::<f32, _>(&map, &edt, &beams, &anchors, n, seed, workers, backend);
                    prop_assert_eq!(
                        &scalar_particles,
                        &particles,
                        "{} workers={} rerun={} anchors={} diverged",
                        backend.name(), workers, rerun, anchors.len()
                    );
                    prop_assert_eq!(scalar_estimate.pose.x.to_bits(), estimate.pose.x.to_bits());
                    prop_assert_eq!(scalar_estimate.pose.y.to_bits(), estimate.pose.y.to_bits());
                    prop_assert_eq!(
                        scalar_estimate.pose.theta.to_bits(),
                        estimate.pose.theta.to_bits()
                    );
                    prop_assert_eq!(
                        scalar_estimate.position_std_m.to_bits(),
                        estimate.position_std_m.to_bits()
                    );
                    prop_assert_eq!(
                        scalar_estimate.yaw_std_rad.to_bits(),
                        estimate.yaw_std_rad.to_bits()
                    );
                    prop_assert_eq!(scalar_estimate.neff.to_bits(), estimate.neff.to_bits());
                }
            }
        }
    }

    /// Full-filter equivalence for binary16 storage, pinned to the stated
    /// [`F16_BACKEND_ULP_BOUND`]: the bound itself is asserted per component,
    /// not approximated with a floating tolerance. (The `<=` against the
    /// currently-zero bound is deliberate — the comparison *is* the contract,
    /// and stays valid if the bound is ever relaxed above zero.) The sweep
    /// covers both beam-only and fused ToF + UWB batches, so the anchor
    /// kernel is held to the same zero-ULP bound on f16 storage.
    #[allow(clippy::absurd_extreme_comparisons)]
    #[test]
    fn batched_filters_stay_within_the_stated_f16_ulp_bound(
        seed in 0u64..300,
        base in 2usize..10,
        tail in 0usize..LANES,
    ) {
        let n = base * LANES + tail;
        let map = arena();
        let edt = EuclideanDistanceField::compute(&map, 1.5);
        let beams = synthetic_beams(seed);
        for (workers, anchors) in [1usize, 8]
            .into_iter()
            .flat_map(|w| [(w, Vec::new()), (w, synthetic_anchors(seed))])
        {
            let (scalar_particles, scalar_estimate) = run_filter::<F16, _>(
                &map, &edt, &beams, &anchors, n, seed, workers, KernelBackend::Scalar,
            );
            for backend in [KernelBackend::Lanes, KernelBackend::Avx2] {
                let (particles, estimate) =
                    run_filter::<F16, _>(&map, &edt, &beams, &anchors, n, seed, workers, backend);
                for i in 0..n {
                    let (a, b) = (scalar_particles.get(i), particles.get(i));
                    for (sa, sb, component) in [
                        (a.x, b.x, "x"),
                        (a.y, b.y, "y"),
                        (a.theta, b.theta, "theta"),
                        (a.weight, b.weight, "weight"),
                    ] {
                        let ulps = f16_ulp_distance(sa, sb);
                        prop_assert!(
                            ulps <= F16_BACKEND_ULP_BOUND,
                            "{} {}[{}] off by {} ULPs (> {}) at workers={} anchors={}",
                            backend.name(), component, i, ulps, F16_BACKEND_ULP_BOUND,
                            workers, anchors.len()
                        );
                    }
                }
                // The estimate is computed in f32/f64 from the f16 components;
                // with 0-ULP particle agreement it must match bit for bit.
                prop_assert_eq!(scalar_estimate.pose.x.to_bits(), estimate.pose.x.to_bits());
                prop_assert_eq!(scalar_estimate.neff.to_bits(), estimate.neff.to_bits());
            }
        }
    }
}

/// The paper's FP16_QM configuration — binary16 particles over the 8-bit
/// quantized distance field — is where the Avx2 backend takes its gather
/// path through the quantized codes. Full-filter equivalence across every
/// backend must hold there too, at the same zero-ULP bound, for beam-only
/// and fused ToF + UWB batches alike.
#[allow(clippy::absurd_extreme_comparisons)]
#[test]
fn every_backend_matches_scalar_on_the_quantized_f16_pipeline() {
    let map = arena();
    let quantized = EuclideanDistanceField::compute(&map, 1.5).quantize();
    for (seed, tail) in [(3u64, 1usize), (11, 5), (29, 0)] {
        let n = 6 * LANES + tail;
        let beams = synthetic_beams(seed);
        for (workers, anchors) in [1usize, 8]
            .into_iter()
            .flat_map(|w| [(w, Vec::new()), (w, synthetic_anchors(seed))])
        {
            let (scalar_particles, scalar_estimate) = run_filter::<F16, _>(
                &map,
                &quantized,
                &beams,
                &anchors,
                n,
                seed,
                workers,
                KernelBackend::Scalar,
            );
            for backend in [KernelBackend::Lanes, KernelBackend::Avx2] {
                let (particles, estimate) = run_filter::<F16, _>(
                    &map, &quantized, &beams, &anchors, n, seed, workers, backend,
                );
                for i in 0..n {
                    let (a, b) = (scalar_particles.get(i), particles.get(i));
                    for (sa, sb, component) in [
                        (a.x, b.x, "x"),
                        (a.y, b.y, "y"),
                        (a.theta, b.theta, "theta"),
                        (a.weight, b.weight, "weight"),
                    ] {
                        let ulps = f16_ulp_distance(sa, sb);
                        assert!(
                            ulps <= F16_BACKEND_ULP_BOUND,
                            "{} {component}[{i}] off by {ulps} ULPs at workers={workers} \
                             seed={seed}",
                            backend.name()
                        );
                    }
                }
                assert_eq!(
                    scalar_estimate.pose.x.to_bits(),
                    estimate.pose.x.to_bits(),
                    "{} seed={seed}",
                    backend.name()
                );
                assert_eq!(
                    scalar_estimate.neff.to_bits(),
                    estimate.neff.to_bits(),
                    "{} seed={seed}",
                    backend.name()
                );
            }
        }
    }
}

/// Runs a KLD-adaptive filter (uniform init + eight gated updates) under
/// `backend` and returns the final particle buffer, the estimate and the
/// per-update population trajectory. Like [`run_filter`], a non-empty
/// `anchors` slice makes every update a fused ToF + UWB batch.
#[allow(clippy::too_many_arguments)]
fn run_adaptive_filter(
    map: &OccupancyGrid,
    edt: &EuclideanDistanceField,
    beams: &[Beam],
    anchors: &[AnchorRange],
    n: usize,
    seed: u64,
    workers: usize,
    backend: KernelBackend,
) -> (ParticleBuffer<f32>, tof_mcl::core::PoseEstimate, Vec<usize>) {
    let config = MclConfig::default()
        .with_particles(n)
        .with_seed(seed)
        .with_workers(workers)
        .with_kernel_backend(backend)
        .with_adaptive(AdaptiveConfig::enabled().with_population_range(64, 2 * n));
    let mut filter = MonteCarloLocalization::<f32, _>::new(config, edt.clone()).unwrap();
    filter.initialize_uniform(map, seed).unwrap();
    let delta = MotionDelta::new(0.12, 0.01, 0.05);
    let mut observations = ObservationBatch::from_beams(beams).with_anchors(anchors);
    observations.partition_in_range(filter.config().r_max);
    let mut populations = Vec::new();
    for _ in 0..8 {
        filter.predict(delta);
        let outcome = filter.update_observations(&observations).unwrap();
        assert!(outcome.is_applied());
        populations.push(filter.particles().len());
    }
    let estimate = filter.estimate();
    (filter.particles().current().clone(), estimate, populations)
}

/// The adaptive (KLD + recovery-injection) filter *changes its population
/// mid-run*, which stresses the size-generalized resampling plan and the
/// dynamic scatter geometry. The backend contract must survive that: for
/// every worker layout, the `Lanes` and `Avx2` adaptive filters must stay
/// bit-identical to the `Scalar` one — same particles, same estimate, and
/// the exact same population trajectory.
#[test]
fn adaptive_filters_are_bit_identical_across_backends_while_resizing() {
    let map = arena();
    let edt = EuclideanDistanceField::compute(&map, 1.5);
    for (seed, n) in [(5u64, 96usize), (17, 257), (41, 512)] {
        let beams = synthetic_beams(seed);
        for (workers, anchors) in [1usize, 3, 8]
            .into_iter()
            .flat_map(|w| [(w, Vec::new()), (w, synthetic_anchors(seed))])
        {
            let (scalar_particles, scalar_estimate, scalar_populations) = run_adaptive_filter(
                &map,
                &edt,
                &beams,
                &anchors,
                n,
                seed,
                workers,
                KernelBackend::Scalar,
            );
            // The beam-only run must actually exercise resizing, otherwise
            // this test degenerates into the fixed-size equivalence suite
            // above. (The fused legs keep whatever trajectory the anchors
            // induce — the contract under test is backend agreement.)
            assert!(
                !anchors.is_empty() || scalar_populations.iter().any(|&p| p != n),
                "seed={seed}: population never left {n}: {scalar_populations:?}"
            );
            for backend in [KernelBackend::Lanes, KernelBackend::Avx2] {
                let (particles, estimate, populations) =
                    run_adaptive_filter(&map, &edt, &beams, &anchors, n, seed, workers, backend);
                assert_eq!(
                    scalar_populations,
                    populations,
                    "{} workers={workers} seed={seed}: population trajectory diverged",
                    backend.name()
                );
                assert_buffers_bit_identical(
                    &scalar_particles,
                    &particles,
                    &format!("{} adaptive workers={workers} seed={seed}", backend.name()),
                );
                assert_eq!(scalar_estimate.pose.x.to_bits(), estimate.pose.x.to_bits());
                assert_eq!(scalar_estimate.pose.y.to_bits(), estimate.pose.y.to_bits());
                assert_eq!(
                    scalar_estimate.pose.theta.to_bits(),
                    estimate.pose.theta.to_bits()
                );
                assert_eq!(scalar_estimate.neff.to_bits(), estimate.neff.to_bits());
            }
        }
    }
}

#[test]
fn ulp_distance_counts_code_steps() {
    assert_eq!(f16_ulp_distance(F16::ONE, F16::ONE), 0);
    assert_eq!(f16_ulp_distance(F16::ZERO, F16::from_bits(0x8000)), 0); // ±0
    assert_eq!(f16_ulp_distance(F16::ONE, F16::from_bits(0x3C01)), 1);
    assert_eq!(
        f16_ulp_distance(F16::from_bits(0x0001), F16::from_bits(0x8001)),
        2
    ); // smallest positive ↔ smallest negative subnormal straddle zero
    assert_eq!(f16_ulp_distance(F16::MAX, F16::INFINITY), 1);
}
