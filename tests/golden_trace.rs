//! Golden-trace fixture: one fixed-seed corridor sequence with the per-step
//! pose estimates pinned as hex-encoded `f32` bit patterns.
//!
//! The determinism suites compare two live code paths against each other
//! (SoA vs AoS, pool vs scoped, lanes vs scalar) — a numeric change that hits
//! *both* sides identically slips through all of them. This fixture is the
//! absolute anchor: any future kernel change that silently shifts the
//! filter's numerics (a re-associated sum, a "harmless" fused multiply-add, a
//! different rounding in the f16 converter) fails this test loudly, under
//! **both** kernel backends.
//!
//! The trace exercises every kernel: gated motion accumulation, the
//! branch-free partitioned correction (plus beams beyond `r_max` that take
//! the skip predicate), systematic resampling and the fixed-block pose
//! reduction, on a particle count (197) that is not a multiple of the lane
//! width or the reduction block.
//!
//! The pinned bits depend on the host libm's `sin`/`cos`/`exp`/`ln` (the
//! filter is otherwise pure IEEE 754 arithmetic); they are valid for the
//! x86-64 Linux/glibc toolchain this repository builds and tests on. If a
//! *deliberate* numeric change (or a platform change) moves the trace, verify
//! the shift is intended and re-bless the fixture:
//!
//! ```sh
//! MCL_BLESS=1 cargo test -q --test golden_trace -- --nocapture
//! ```
//!
//! and paste the printed table over `GOLDEN_POSE_BITS`.

use tof_mcl::core::kernel::KernelBackend;
use tof_mcl::core::{MclConfig, MonteCarloLocalization, MotionDelta};
use tof_mcl::gridmap::{EuclideanDistanceField, MapBuilder, Pose2};
use tof_mcl::sensor::{AnchorRange, ObservationBatch, SensorConfig, SensorRig};

use rand::SeedableRng;

/// `(x, y, theta)` estimate bits after each applied update, in step order.
const GOLDEN_POSE_BITS: [[u32; 3]; 8] = [
    [0x3F29E0D3, 0x3F23AE1A, 0x3E0EA0D4],
    [0x3F4B7AAA, 0x3F30CAA3, 0x3E30B5DC],
    [0x3F6D6FCB, 0x3F42D79F, 0x3E68839E],
    [0x3F8811AA, 0x3F4C79D1, 0x3E4431E0],
    [0x3F99EDD3, 0x3F54C4C1, 0x3E4449FF],
    [0x3FAC14F6, 0x3F498587, 0x3E52EFFD],
    [0x3FBBFF4C, 0x3F5062AE, 0x3E68CF7A],
    [0x3FCA4FF1, 0x3F57293E, 0x3E840D8E],
];

/// `(x, y, theta)` estimate bits of the *fused* replay (same corridor, same
/// beams, plus three UWB anchors per step — one denied with a NaN range, so
/// the non-finite skip predicate is on the pinned path too).
const GOLDEN_FUSED_POSE_BITS: [[u32; 3]; 8] = [
    [0x3F27DCF1, 0x3F19AAE0, 0x3E1E580A],
    [0x3F4BC135, 0x3F1B9577, 0x3E2E9458],
    [0x3F6DF9D8, 0x3F2B642F, 0x3E30A1D8],
    [0x3F87AC50, 0x3F38F517, 0x3E3E2A95],
    [0x3F991FD9, 0x3F45FF57, 0x3E54D813],
    [0x3FA9E0EA, 0x3F4891EA, 0x3E6CB919],
    [0x3FB9D249, 0x3F54624C, 0x3E6B88F7],
    [0x3FC69FAE, 0x3F5323D9, 0x3E86E0F0],
];

/// The fixed UWB anchors of the fused replay: two corridor corners plus one
/// permanently denied anchor (its measured range is always NaN).
const TRACE_ANCHORS: [[f32; 2]; 3] = [[0.2, 0.2], [3.8, 1.4], [2.0, 0.2]];

/// Deterministic measured range to `TRACE_ANCHORS[k]` from `truth`: true
/// distance plus a small step-indexed ripple (no RNG draws, so the beam
/// noise stream is untouched by the fused variant). Anchor 2 is denied.
fn trace_range(truth: &Pose2, k: usize, step: usize) -> f32 {
    if k == 2 {
        return f32::NAN;
    }
    let dx = truth.x - TRACE_ANCHORS[k][0];
    let dy = truth.y - TRACE_ANCHORS[k][1];
    let ripple = 0.04 * (step as f32 * 0.9 + k as f32).sin();
    (dx * dx + dy * dy).sqrt() + ripple
}

/// Replays the fixed corridor sequence under `backend` and returns the
/// per-step estimate bits. With `fused`, every update also scores the
/// [`TRACE_ANCHORS`] ranges through the anchor kernel; without it, the replay
/// drives the deprecated beam-only `update` shim — pinning that the shim
/// still reproduces the pre-redesign numerics bit for bit.
fn trace(backend: KernelBackend, fused: bool) -> Vec<[u32; 3]> {
    // A 4 m × 1.6 m corridor with a mid pillar: walls near enough that most
    // beams land within r_max, far corridor axis beams beyond it.
    let map = MapBuilder::new(4.0, 1.6, 0.05)
        .border_walls()
        .filled_rect((2.4, 0.6), (2.6, 1.0))
        .build();
    let edt = EuclideanDistanceField::compute(&map, 1.5);
    let config = MclConfig::default()
        .with_particles(197)
        .with_seed(42)
        .with_workers(3)
        .with_kernel_backend(backend);
    let mut filter = MonteCarloLocalization::<f32, _>::new(config, edt).unwrap();
    let mut truth = Pose2::new(0.5, 0.6, 0.1);
    filter.initialize_gaussian(&truth, 0.15, 0.2, 7).unwrap();
    let rig = SensorRig::front_and_rear(
        SensorConfig::default()
            .with_range_noise(0.01)
            .with_interference_probability(0.0),
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let mut bits = Vec::new();
    for step in 0..GOLDEN_POSE_BITS.len() {
        let next = truth.compose(&Pose2::new(0.13, 0.005, 0.03));
        let delta = MotionDelta::between(&truth, &next);
        truth = next;
        filter.predict(delta);
        let beams = rig.observe(&map, &truth, step as f64 / 15.0, &mut rng);
        let outcome = if fused {
            let mut observations = ObservationBatch::from_beams(&beams);
            observations.partition_in_range(filter.config().r_max);
            for (k, [ax, ay]) in TRACE_ANCHORS.iter().enumerate() {
                observations.push_anchor(AnchorRange::new(*ax, *ay, trace_range(&truth, k, step)));
            }
            filter.update_observations(&observations).unwrap()
        } else {
            // The deprecated shim on purpose: this trace is the bit-exact
            // anchor proving the beam-only path survived the API redesign.
            #[allow(deprecated)]
            filter.update(&beams).unwrap()
        };
        let estimate = outcome.estimate().expect("0.13 m step opens the gate");
        bits.push([
            estimate.pose.x.to_bits(),
            estimate.pose.y.to_bits(),
            estimate.pose.theta.to_bits(),
        ]);
    }
    bits
}

fn check_trace(fused: bool, golden: &[[u32; 3]; 8]) {
    for backend in KernelBackend::ALL {
        let got = trace(backend, fused);
        if std::env::var("MCL_BLESS").is_ok_and(|v| !v.is_empty()) {
            println!(
                "// {} backend ({}):",
                backend.name(),
                if fused { "fused" } else { "beam-only" }
            );
            for step in &got {
                println!(
                    "    [0x{:08X}, 0x{:08X}, 0x{:08X}],",
                    step[0], step[1], step[2]
                );
            }
            continue;
        }
        for (step, (got, want)) in got.iter().zip(golden.iter()).enumerate() {
            assert_eq!(
                got,
                want,
                "{} backend drifted at step {step}: got [{:#010X}, {:#010X}, {:#010X}] \
                 = ({}, {}, {})",
                backend.name(),
                got[0],
                got[1],
                got[2],
                f32::from_bits(got[0]),
                f32::from_bits(got[1]),
                f32::from_bits(got[2]),
            );
        }
    }
}

#[test]
fn corridor_trace_matches_the_pinned_estimates_under_both_backends() {
    check_trace(false, &GOLDEN_POSE_BITS);
}

#[test]
fn fused_corridor_trace_matches_the_pinned_estimates_under_both_backends() {
    check_trace(true, &GOLDEN_FUSED_POSE_BITS);
}

#[test]
fn fused_trace_differs_from_the_beam_only_trace() {
    // The anchor kernel must actually perturb the weights: a fused batch
    // whose anchors silently score zero would leave the trace unchanged.
    assert_ne!(GOLDEN_FUSED_POSE_BITS[0], GOLDEN_POSE_BITS[0]);
}

#[test]
fn the_trace_tracks_the_corridor_truth() {
    // Sanity: the pinned trajectory is a *converged* tracking run, not frozen
    // garbage — the last pinned estimate sits near where the truth ends up
    // (start 0.5 + 8 steps of ~0.13 m forward motion).
    let last = GOLDEN_POSE_BITS[GOLDEN_POSE_BITS.len() - 1];
    let (x, y) = (f32::from_bits(last[0]), f32::from_bits(last[1]));
    assert!((1.0..2.2).contains(&x), "final x {x}");
    assert!((0.4..1.2).contains(&y), "final y {y}");
}
