//! Harness for the work-stealing multi-queue scheduler: concurrency that the
//! single-slot pool could not express, pinned both for liveness (parallelism
//! actually happens) and for determinism (it is unobservable in the results).
//!
//! Three properties:
//!
//! * **Nested kernel parallelism.** A kernel dispatch issued from *inside* a
//!   pool task — the shape of a filter update inside a `run_batch` job — is
//!   enqueued on the local worker's deque and stolen by idle workers, not
//!   starved into inline execution as the single-slot scheduler did. The
//!   regression test asserts that nested tasks run on more than one thread
//!   and that the steal counters provably moved.
//! * **Concurrent sweeps are bit-identical.** N simultaneous `run_batch`
//!   sweeps from separate threads return exactly what their serial
//!   evaluations return, for every `MCL_TEST_WORKERS` the CI matrix injects
//!   (the shared pool is sized by it) and for both kernel backends.
//! * **Stealing is exercised.** Under a contended dispatch on the shared
//!   pool, `pool::stats()` shows non-zero steal counts — the work-stealing
//!   path is live, not dead code behind an inline fallback.

use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use tof_mcl::core::pool::{self, WorkerPool};
use tof_mcl::core::precision::PipelineConfig;
use tof_mcl::core::KernelBackend;
use tof_mcl::sim::{run_batch, BatchJob, PaperScenario, SequenceResult};

/// Regression for the nested-dispatch starvation edge: a dispatch from inside
/// a pool task used to always run inline when the pool was busy (the single
/// slot was taken by the outer job). Under the work-stealing scheduler the
/// nested job is advertised on the local deque, so idle workers pick its
/// tasks up — kernel-level parallelism inside job-level parallelism.
#[test]
fn nested_dispatch_tasks_run_on_multiple_threads() {
    let pool = WorkerPool::new(4);
    let before_stolen: u64 = {
        let stats = pool.stats();
        stats.total_stolen()
    };
    let nested_threads = Mutex::new(HashSet::new());
    // Two outer "jobs"; job 0 nested-dispatches a sleepy kernel, exactly the
    // run_batch shape. The sleeps give every other thread time to steal even
    // on a single-core host (a sleeping thread always yields the core).
    pool.dispatch(2, &|outer| {
        if outer == 0 {
            pool.dispatch(16, &|_| {
                nested_threads
                    .lock()
                    .unwrap()
                    .insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_millis(2));
            });
        }
    });
    let distinct = nested_threads.lock().unwrap().len();
    assert!(
        distinct >= 2,
        "nested kernel dispatch stayed on one thread (starved inline): {distinct} thread(s)"
    );
    assert!(
        pool.stats().total_stolen() > before_stolen,
        "no steal was recorded while nested work was available"
    );
}

/// The steal/execute counters of the shared pool move under contention, and
/// the executed totals account for every dispatched task.
#[test]
fn shared_pool_stats_expose_live_stealing_under_contention() {
    let pool = pool::shared();
    if pool.workers() < 2 {
        // A 1-worker pool (MCL_TEST_WORKERS=1 leg) runs everything inline;
        // there is nobody to steal from. The shape is still checked.
        assert!(pool.stats().workers.is_empty());
        return;
    }
    let before = pool::stats();
    let tasks = AtomicUsize::new(0);
    pool.dispatch(48, &|_| {
        tasks.fetch_add(1, Ordering::Relaxed);
        std::thread::sleep(std::time::Duration::from_millis(1));
    });
    let after = pool::stats();
    assert_eq!(tasks.load(Ordering::Relaxed), 48);
    assert_eq!(after.total_executed() - before.total_executed(), 48);
    // A top-level dispatch is published through the injector; with sleepy
    // tasks the resident workers must have pulled from it, and every such
    // claim counts as a steal.
    assert!(
        after.total_stolen() > before.total_stolen(),
        "steal counters did not move under a contended dispatch"
    );
}

fn serial_reference(scenario: &PaperScenario, jobs: &[BatchJob]) -> Vec<SequenceResult> {
    jobs.iter()
        .map(|job| {
            scenario.evaluate_with_backend(
                &scenario.sequences()[job.sequence_index],
                job.pipeline,
                job.particles,
                job.seed,
                job.kernel_backend,
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// N simultaneous `run_batch` sweeps from separate threads are
    /// bit-identical to their serial executions — across the
    /// `MCL_TEST_WORKERS` matrix (which sizes the shared pool) and with both
    /// kernel backends in flight at once. Under the single-slot scheduler
    /// the sweeps serialized behind `dispatch_queued`; now they interleave
    /// across the workers, and the interleaving must stay unobservable.
    #[test]
    fn simultaneous_run_batch_sweeps_match_their_serial_executions(
        scenario_seed in 1u64..50,
        job_seed in 1u64..1000,
    ) {
        let scenario = PaperScenario::quick(scenario_seed);
        let sweeps: Vec<Vec<BatchJob>> = [KernelBackend::Scalar, KernelBackend::Lanes, KernelBackend::default()]
            .iter()
            .enumerate()
            .map(|(i, &backend)| {
                BatchJob::grid(&[0], &[PipelineConfig::FP32], &[48 + 16 * i], &[job_seed, job_seed + 1])
                    .into_iter()
                    .map(|job| job.with_kernel_backend(backend))
                    .collect()
            })
            .collect();
        let expected: Vec<Vec<SequenceResult>> = sweeps
            .iter()
            .map(|jobs| serial_reference(&scenario, jobs))
            .collect();
        // All three sweeps dispatch concurrently from their own threads onto
        // the shared pool.
        let concurrent: Vec<Vec<SequenceResult>> = std::thread::scope(|scope| {
            let handles: Vec<_> = sweeps
                .iter()
                .map(|jobs| {
                    let scenario = &scenario;
                    scope.spawn(move || {
                        run_batch(scenario, jobs, jobs.len())
                            .into_iter()
                            .map(|outcome| outcome.result)
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (sweep, (got, want)) in concurrent.iter().zip(expected.iter()).enumerate() {
            prop_assert_eq!(got, want, "sweep {} diverged from serial evaluation", sweep);
        }
    }
}
